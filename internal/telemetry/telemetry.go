// Package telemetry is the service-wide metrics and tracing layer: a
// registry of counters, gauges, and latency histograms that every tier of
// the InfoGram stack (wire, core, cache, gsi, scheduler, gram) records
// into, plus the request trace context threaded through the unified
// protocol path. Where package metrics keeps the paper's §6.5 per-keyword
// Welford statistics (the "performance" tag), this package answers the
// operational questions the MDS performance studies ask of a deployed
// information service: request rates, latency distributions under load,
// and per-component breakdowns.
//
// Metric types are nil-safe: calling Inc/Add/Observe on a nil metric is a
// no-op, so instrumented code needs no "is telemetry enabled" branches.
// The hot path is allocation-free — counters and gauges are single
// atomics, histograms use fixed log-spaced buckets with lock-striped
// shards selected by a per-P random source.
//
// The registry exposes its contents two ways: WritePrometheus renders the
// Prometheus text exposition format for an HTTP scrape endpoint, and
// Snapshot feeds the "selfmetrics" information provider so clients can ask
// InfoGram about InfoGram through an ordinary xRSL info query — the
// paper's unified-protocol claim applied to the service itself.
package telemetry

import (
	"fmt"
	"io"
	"math/bits"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; all methods are safe on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The zero value is ready to
// use; all methods are safe on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram bucket layout: fixed log-spaced (power-of-two) duration
// buckets from 1µs to ~16.8s plus an overflow bucket. Fixed boundaries
// keep Observe allocation-free and make exposition deterministic.
const (
	// NumBuckets is the number of finite histogram buckets.
	NumBuckets = 25
	// bucketBase is the upper bound of the first bucket.
	bucketBase = time.Microsecond
	// histStripes shards the counters to spread write contention; must be
	// a power of two.
	histStripes = 8
)

// BucketBound returns the inclusive upper bound of finite bucket i.
func BucketBound(i int) time.Duration {
	return bucketBase << i
}

// bucketIndex maps a duration to its bucket: the smallest i with
// d <= BucketBound(i), or NumBuckets for the overflow bucket.
func bucketIndex(d time.Duration) int {
	if d <= bucketBase {
		return 0
	}
	us := uint64((d + bucketBase - 1) / bucketBase) // ceil to µs
	idx := bits.Len64(us - 1)                       // ceil(log2(us))
	if idx >= NumBuckets {
		return NumBuckets
	}
	return idx
}

// histStripe is one shard of a histogram, padded so adjacent stripes do
// not share cache lines under concurrent writers.
type histStripe struct {
	counts [NumBuckets + 1]atomic.Uint64
	sumNS  atomic.Int64
	_      [6]uint64
}

// Exemplar links one histogram bucket to a concrete trace: the most
// recent traced observation that landed in that bucket.
type Exemplar struct {
	Trace TraceID
	Value time.Duration
}

// Histogram is a lock-free latency histogram with log-spaced buckets.
// Observe is allocation-free and safe on a nil receiver.
type Histogram struct {
	stripes [histStripes]histStripe
	// exemplars holds the latest traced observation per bucket. They are
	// surfaced via Snapshot and the /debug/traces endpoint, deliberately
	// not in the Prometheus 0.0.4 text format (which predates exemplars).
	exemplars [NumBuckets + 1]atomic.Pointer[Exemplar]
}

// Observe records one duration sample. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	s := &h.stripes[rand.Uint64()&(histStripes-1)]
	s.counts[bucketIndex(d)].Add(1)
	s.sumNS.Add(int64(d))
}

// ObserveTrace is Observe plus an exemplar: when trace is non-empty the
// sample's bucket remembers it, linking the latency distribution to a
// concrete trace in the trace store.
func (h *Histogram) ObserveTrace(d time.Duration, trace TraceID) {
	h.Observe(d)
	if h == nil || trace == "" {
		return
	}
	if d < 0 {
		d = 0
	}
	h.exemplars[bucketIndex(d)].Store(&Exemplar{Trace: trace, Value: d})
}

// HistogramSnapshot is a point-in-time aggregate of a histogram.
type HistogramSnapshot struct {
	// Count is the total number of observations.
	Count uint64
	// Sum is the total of all observed durations.
	Sum time.Duration
	// Buckets holds the per-bucket (non-cumulative) counts; index i covers
	// (BucketBound(i-1), BucketBound(i)], index NumBuckets is overflow.
	Buckets [NumBuckets + 1]uint64
	// Exemplars holds, per bucket, the latest traced observation (nil
	// when the bucket never saw one).
	Exemplars [NumBuckets + 1]*Exemplar
}

// Mean returns the average observed duration, or 0 with no observations.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the containing bucket; overflow-bucket samples report the largest
// finite bound.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	var cum float64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		prev := cum
		cum += float64(n)
		if cum < target {
			continue
		}
		if i >= NumBuckets {
			return BucketBound(NumBuckets - 1)
		}
		lo := time.Duration(0)
		if i > 0 {
			lo = BucketBound(i - 1)
		}
		hi := BucketBound(i)
		frac := (target - prev) / float64(n)
		return lo + time.Duration(frac*float64(hi-lo))
	}
	return BucketBound(NumBuckets - 1)
}

// Snapshot aggregates all stripes (0-value snapshot on nil).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var out HistogramSnapshot
	if h == nil {
		return out
	}
	for i := range h.stripes {
		st := &h.stripes[i]
		out.Sum += time.Duration(st.sumNS.Load())
		for b := range st.counts {
			n := st.counts[b].Load()
			out.Buckets[b] += n
			out.Count += n
		}
	}
	for b := range h.exemplars {
		out.Exemplars[b] = h.exemplars[b].Load()
	}
	return out
}

// Label is one metric dimension (e.g. {verb submit}).
type Label struct {
	Key   string
	Value string
}

// Kind discriminates metric types in snapshots.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind as Prometheus spells it.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// family groups all label variants of one metric name.
type family struct {
	name  string
	help  string
	kind  Kind
	order []string // label signatures in first-seen order
	bysig map[string]*instance
}

type instance struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds named metrics. Lookups are idempotent: asking for the
// same name and labels returns the same metric instance, so registration
// can happen at instrumentation-setup time and the hot path touch only
// atomics.
type Registry struct {
	mu       sync.Mutex
	names    []string
	byName   map[string]*family
	started  time.Time
	hasStart bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// MarkStart records the service start time, exposed as
// <name>_start_time_seconds-style uptime info by callers that want it.
func (r *Registry) MarkStart(t time.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.started = t
	r.hasStart = true
	r.mu.Unlock()
}

func labelSig(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
	}
	return sb.String()
}

func (r *Registry) instance(name, help string, kind Kind, labels []Label) *instance {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, bysig: make(map[string]*instance)}
		r.byName[name] = f
		r.names = append(r.names, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	sig := labelSig(labels)
	inst, ok := f.bysig[sig]
	if !ok {
		inst = &instance{labels: append([]Label(nil), labels...)}
		switch kind {
		case KindCounter:
			inst.c = &Counter{}
		case KindGauge:
			inst.g = &Gauge{}
		case KindHistogram:
			inst.h = &Histogram{}
		}
		f.bysig[sig] = inst
		f.order = append(f.order, sig)
	}
	return inst
}

// Counter returns (creating if needed) the counter name{labels}. A nil
// registry returns nil, which is itself a safe no-op metric.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.instance(name, help, KindCounter, labels).c
}

// Gauge returns (creating if needed) the gauge name{labels}.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.instance(name, help, KindGauge, labels).g
}

// Histogram returns (creating if needed) the histogram name{labels}.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.instance(name, help, KindHistogram, labels).h
}

// Point is one metric instance in a snapshot.
type Point struct {
	Name   string
	Labels []Label
	Kind   Kind
	// Value holds counter/gauge values.
	Value int64
	// Hist holds histogram aggregates (histograms only).
	Hist HistogramSnapshot
}

// Snapshot returns every metric in registration order; label variants of a
// family keep their first-seen order.
func (r *Registry) Snapshot() []Point {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Point
	for _, name := range r.names {
		f := r.byName[name]
		for _, sig := range f.order {
			inst := f.bysig[sig]
			p := Point{Name: name, Labels: inst.labels, Kind: f.kind}
			switch f.kind {
			case KindCounter:
				p.Value = inst.c.Value()
			case KindGauge:
				p.Value = inst.g.Value()
			case KindHistogram:
				p.Hist = inst.h.Snapshot()
			}
			out = append(out, p)
		}
	}
	return out
}

// escapeLabel escapes a label value for the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func renderLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, escapeLabel(l.Value))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Durations are reported in seconds, as the
// Prometheus conventions require.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.byName[n]
	}
	started, hasStart := r.started, r.hasStart
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		// Copy instances under the registry lock to keep exposition
		// consistent with concurrent registration.
		r.mu.Lock()
		sigs := append([]string(nil), f.order...)
		insts := make([]*instance, len(sigs))
		for i, sig := range sigs {
			insts[i] = f.bysig[sig]
		}
		r.mu.Unlock()
		for _, inst := range insts {
			switch f.kind {
			case KindCounter:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, renderLabels(inst.labels), inst.c.Value()); err != nil {
					return err
				}
			case KindGauge:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, renderLabels(inst.labels), inst.g.Value()); err != nil {
					return err
				}
			case KindHistogram:
				snap := inst.h.Snapshot()
				var cum uint64
				for i := 0; i < NumBuckets; i++ {
					cum += snap.Buckets[i]
					le := strconv.FormatFloat(BucketBound(i).Seconds(), 'g', -1, 64)
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
						f.name, renderLabels(inst.labels, Label{"le", le}), cum); err != nil {
						return err
					}
				}
				cum += snap.Buckets[NumBuckets]
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					f.name, renderLabels(inst.labels, Label{"le", "+Inf"}), cum); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, renderLabels(inst.labels),
					strconv.FormatFloat(snap.Sum.Seconds(), 'g', -1, 64)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, renderLabels(inst.labels), snap.Count); err != nil {
					return err
				}
			}
		}
	}
	if hasStart {
		if _, err := fmt.Fprintf(w, "# TYPE infogram_start_time_seconds gauge\ninfogram_start_time_seconds %d\n",
			started.Unix()); err != nil {
			return err
		}
	}
	return nil
}

// SortLabels orders labels by key, normalizing instances created from
// differently-ordered label lists. Exposed for providers that render
// snapshots deterministically.
func SortLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
