package telemetry

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSpanIDString(t *testing.T) {
	if got := SpanID(0).String(); got != "" {
		t.Errorf("zero ID = %q, want empty", got)
	}
	if got := SpanID(0xab).String(); got != "00000000000000ab" {
		t.Errorf("SpanID(0xab) = %q", got)
	}
	id := NewSpanID()
	if id == 0 {
		t.Fatal("NewSpanID minted zero")
	}
	back, err := ParseSpanID(id.String())
	if err != nil || back != id {
		t.Errorf("roundtrip %v -> %q -> %v, %v", id, id.String(), back, err)
	}
	if v, err := ParseSpanID(""); err != nil || v != 0 {
		t.Errorf("ParseSpanID(\"\") = %v, %v", v, err)
	}
}

func TestStartSpanDisarmed(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		c, sp := StartSpan(ctx, "noop")
		sp.SetAttr("k", "v")
		sp.Fail("boom")
		sp.End()
		if c != ctx {
			t.Fatal("disarmed StartSpan changed the context")
		}
	})
	if allocs != 0 {
		t.Errorf("disarmed StartSpan allocates %v times per run, want 0", allocs)
	}
	var nilSpan *Span
	if nilSpan.Trace() != "" || nilSpan.ID() != 0 || nilSpan.Parent() != 0 {
		t.Error("nil span accessors not zero")
	}
}

func TestSpanTreeRecorded(t *testing.T) {
	tr := NewTracer(TracerOptions{Telemetry: NewRegistry()})
	ctx, root := tr.StartTrace(context.Background(), "request:SUBMIT")
	root.SetAttr("peer", "/O=Grid/CN=alice")

	ctx2, child := StartSpan(ctx, "cache.lookup")
	child.SetAttr("outcome", "miss")
	_, grand := StartSpan(ctx2, "provider.collect")
	grand.End()
	child.End()
	root.End()

	rec, ok := tr.Store().Get(root.Trace())
	if !ok {
		t.Fatal("trace not retained")
	}
	if rec.Root != root.ID() {
		t.Errorf("root = %v, want %v", rec.Root, root.ID())
	}
	if len(rec.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(rec.Spans))
	}
	byID := map[SpanID]SpanRecord{}
	for _, s := range rec.Spans {
		byID[s.ID] = s
	}
	if byID[child.ID()].Parent != root.ID() {
		t.Errorf("child parent = %v, want root %v", byID[child.ID()].Parent, root.ID())
	}
	if byID[grand.ID()].Parent != child.ID() {
		t.Errorf("grandchild parent = %v, want child %v", byID[grand.ID()].Parent, child.ID())
	}
	if attrs := byID[root.ID()].Attrs; len(attrs) != 1 || attrs[0].Key != "peer" {
		t.Errorf("root attrs = %v", attrs)
	}
}

func TestJoinTraceUsesCallerIDs(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	callerTrace := NewTraceID()
	callerSpan := NewSpanID()
	ctx, root := tr.JoinTrace(context.Background(), callerTrace, callerSpan, "request:SUBMIT")
	if root.Trace() != callerTrace || root.Parent() != callerSpan {
		t.Fatalf("joined root = (%v, parent %v)", root.Trace(), root.Parent())
	}
	if TraceFrom(ctx) != callerTrace {
		t.Error("context does not carry the caller's trace")
	}
	root.End()
	if rec, ok := tr.Store().Get(callerTrace); !ok || rec.Spans[0].Parent != callerSpan {
		t.Errorf("stored trace = %+v, %v", rec, ok)
	}
}

func TestTailSamplingKeepsErrored(t *testing.T) {
	// Negative rate: only errored or slow traces survive.
	tr := NewTracer(TracerOptions{SampleRate: -1, Telemetry: NewRegistry()})

	_, healthy := tr.StartTrace(context.Background(), "ok")
	healthy.End()
	if _, ok := tr.Store().Get(healthy.Trace()); ok {
		t.Error("healthy trace retained under sample=-1")
	}

	ctx, root := tr.StartTrace(context.Background(), "bad")
	_, child := StartSpan(ctx, "journal.append")
	child.Fail("disk full")
	child.End()
	root.End()
	rec, ok := tr.Store().Get(root.Trace())
	if !ok {
		t.Fatal("errored trace dropped")
	}
	if !rec.Err {
		t.Error("trace error bit not set")
	}
}

func TestTailSamplingKeepsSlow(t *testing.T) {
	now := time.Unix(1000, 0)
	clk := func() time.Time { return now }
	tr := NewTracer(TracerOptions{SampleRate: -1, SlowThreshold: 50 * time.Millisecond, Clock: clk})

	_, fast := tr.StartTrace(context.Background(), "fast")
	now = now.Add(10 * time.Millisecond)
	fast.End()
	if _, ok := tr.Store().Get(fast.Trace()); ok {
		t.Error("fast healthy trace retained")
	}

	_, slow := tr.StartTrace(context.Background(), "slow")
	now = now.Add(80 * time.Millisecond)
	slow.End()
	if rec, ok := tr.Store().Get(slow.Trace()); !ok || rec.Duration < 50*time.Millisecond {
		t.Errorf("slow trace = %+v, %v", rec, ok)
	}
}

func TestLateSpansAppendToKeptTrace(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	ctx, root := tr.StartTrace(context.Background(), "request:SUBMIT")
	_, spawn := StartSpan(ctx, "gram.spawn")
	spawn.End()
	root.End() // SUBMIT acked; the job keeps running

	// The async job's span finishes after the root finalized.
	jobCtx := ContextWithSpan(context.Background(), spawn)
	_, sched := StartSpan(jobCtx, "scheduler.run")
	sched.End()

	rec, ok := tr.Store().Get(root.Trace())
	if !ok {
		t.Fatal("trace dropped")
	}
	names := map[string]SpanID{}
	for _, s := range rec.Spans {
		names[s.Name] = s.Parent
	}
	if parent, ok := names["scheduler.run"]; !ok || parent != spawn.ID() {
		t.Errorf("late span parent = %v (present %t), want %v", parent, ok, spawn.ID())
	}
}

func TestLateSpanOnDroppedTraceCounted(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(TracerOptions{SampleRate: -1, Telemetry: reg})
	ctx, root := tr.StartTrace(context.Background(), "healthy")
	_, spawn := StartSpan(ctx, "gram.spawn")
	spawn.End()
	root.End() // dropped: healthy under sample=-1

	_, late := StartSpan(ContextWithSpan(context.Background(), spawn), "scheduler.run")
	late.End()
	if got := counterValue(t, reg, "infogram_trace_spans_late_dropped_total"); got != 1 {
		t.Errorf("late-dropped counter = %d, want 1", got)
	}
}

func TestSpanOverflowBound(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(TracerOptions{MaxSpans: 4, Telemetry: reg})
	ctx, root := tr.StartTrace(context.Background(), "burst")
	for i := 0; i < 10; i++ {
		_, sp := StartSpan(ctx, fmt.Sprintf("op%d", i))
		sp.End()
	}
	root.End()
	rec, ok := tr.Store().Get(root.Trace())
	if !ok {
		t.Fatal("trace dropped")
	}
	if len(rec.Spans) != 4 {
		t.Errorf("stored spans = %d, want the MaxSpans bound of 4", len(rec.Spans))
	}
	if got := counterValue(t, reg, "infogram_trace_spans_overflow_total"); got != 7 {
		// 10 children + 1 root = 11 finishes, 4 stored.
		t.Errorf("overflow counter = %d, want 7", got)
	}
}

func TestStoreEvictionFIFO(t *testing.T) {
	store := NewTraceStore(storeStripes) // one trace per stripe
	// Random IDs don't guarantee every stripe is hit (a stripe stays empty
	// ~11% of the time over 32 draws), so draw until each stripe has seen
	// exactly four inserts.
	perStripe := make(map[*storeStripe]int)
	var traces []TraceID
	for len(traces) < 4*storeStripes {
		id := NewTraceID()
		if st := store.stripe(id); perStripe[st] < 4 {
			perStripe[st]++
			traces = append(traces, id)
			store.Put(TraceRecord{Trace: id, Start: time.Unix(int64(len(traces)), 0)})
		}
	}
	if n := store.Len(); n != storeStripes {
		t.Errorf("Len = %d, want %d", n, storeStripes)
	}
	if ev := store.Evicted(); ev != int64(3*storeStripes) {
		t.Errorf("Evicted = %d, want %d", ev, 3*storeStripes)
	}
	// The newest trace is always still present (its stripe evicted its
	// own oldest, never the newest).
	if _, ok := store.Get(traces[len(traces)-1]); !ok {
		t.Error("newest trace evicted")
	}
}

func TestStoreMergesSameTrace(t *testing.T) {
	store := NewTraceStore(0)
	trace := NewTraceID()
	t0 := time.Unix(100, 0)
	store.Put(TraceRecord{Trace: trace, Start: t0, Duration: time.Second,
		Spans: []SpanRecord{{ID: 1, Name: "a"}}})
	store.Put(TraceRecord{Trace: trace, Start: t0.Add(2 * time.Second), Duration: time.Second,
		Err: true, Spans: []SpanRecord{{ID: 2, Name: "b"}}})
	rec, ok := store.Get(trace)
	if !ok {
		t.Fatal("trace missing")
	}
	if len(rec.Spans) != 2 || !rec.Err {
		t.Errorf("merged = %+v", rec)
	}
	if rec.Duration != 3*time.Second {
		t.Errorf("window = %v, want 3s (extended over both requests)", rec.Duration)
	}
}

func TestTracerConcurrentTraces(t *testing.T) {
	tr := NewTracer(TracerOptions{Capacity: 1024})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx, root := tr.StartTrace(context.Background(), "request")
				_, child := StartSpan(ctx, "work")
				child.End()
				root.End()
			}
		}()
	}
	wg.Wait()
	if n := tr.Store().Len(); n != 400 {
		t.Errorf("stored traces = %d, want 400", n)
	}
}

func TestHistogramExemplar(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "latency")
	trace := NewTraceID()
	h.ObserveTrace(3*time.Millisecond, trace)
	h.Observe(4 * time.Millisecond) // no trace: must not clobber exemplar shape
	found := false
	for _, p := range reg.Snapshot() {
		if p.Name != "lat" {
			continue
		}
		for _, ex := range p.Hist.Exemplars {
			if ex != nil && ex.Trace == trace {
				found = true
				if ex.Value != 3*time.Millisecond {
					t.Errorf("exemplar value = %v", ex.Value)
				}
			}
		}
	}
	if !found {
		t.Error("exemplar not captured in snapshot")
	}
}

func TestDoubleEndIsNoOp(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	_, root := tr.StartTrace(context.Background(), "once")
	root.End()
	root.End()
	rec, ok := tr.Store().Get(root.Trace())
	if !ok || len(rec.Spans) != 1 {
		t.Errorf("double End stored %d spans (ok=%t), want 1", len(rec.Spans), ok)
	}
}

// counterValue digs a counter out of a registry snapshot.
func counterValue(t *testing.T, reg *Registry, name string) int64 {
	t.Helper()
	for _, p := range reg.Snapshot() {
		if p.Name == name && p.Kind == KindCounter {
			return p.Value
		}
	}
	t.Fatalf("counter %q not found", name)
	return 0
}
