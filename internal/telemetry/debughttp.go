package telemetry

import (
	"net/http"
	"net/http/pprof"
)

// NewDebugMux builds the HTTP mux every server binary serves on its
// metrics address: the Prometheus text endpoint at /metrics, the trace
// store (plus histogram exemplars) as JSON at /debug/traces, and the
// standard pprof handlers under /debug/pprof/. A nil tracer leaves
// /debug/traces serving an empty trace list.
func NewDebugMux(reg *Registry, t *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(reg))
	mux.Handle("/debug/traces", TraceDebugHandler(t, reg))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
