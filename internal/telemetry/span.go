package telemetry

import (
	"context"
	"math/rand/v2"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Distributed tracing rides on the trace-ID plumbing that already existed
// (TraceID in every log record): a Tracer mints spans with parent links,
// start times, durations, status, and a bounded attribute set; span trees
// accumulate per root request and are tail-sampled into a lock-striped
// in-process TraceStore when the root span ends. Requests arriving with a
// wire-propagated trace context (see wire.EncodeTraceCtx) join the
// caller's trace instead of minting their own, so a GIIS-style nested
// query produces one coherent multi-hop tree.
//
// The disarmed path — no Tracer in the context chain — costs one context
// lookup and allocates nothing: StartSpan returns (ctx, nil) and every
// Span method is safe on a nil receiver, so instrumented code carries no
// "is tracing on" branches.

// SpanID identifies one span within a trace. Zero means "no span".
type SpanID uint64

// NewSpanID mints a random non-zero span ID from the per-P rand source.
func NewSpanID() SpanID {
	for {
		if id := SpanID(rand.Uint64()); id != 0 {
			return id
		}
	}
}

// String renders the ID as 16 hex digits ("" for the zero ID).
func (id SpanID) String() string {
	if id == 0 {
		return ""
	}
	var b [16]byte
	s := strconv.AppendUint(b[:0], uint64(id), 16)
	for len(s) < 16 {
		s = append(s[:1], s...)
		s[0] = '0'
	}
	return string(s)
}

// ParseSpanID parses the hex form produced by String; "" parses to 0.
func ParseSpanID(s string) (SpanID, error) {
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseUint(s, 16, 64)
	return SpanID(v), err
}

// MarshalJSON renders the ID as a quoted hex string.
func (id SpanID) MarshalJSON() ([]byte, error) {
	return []byte(`"` + id.String() + `"`), nil
}

// MaxSpanAttrs bounds the attributes one span can carry; SetAttr calls
// past the bound are dropped so a hot loop cannot balloon a span.
const MaxSpanAttrs = 8

// SpanAttr is one key-value annotation on a span.
type SpanAttr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanRecord is the immutable, stored form of a finished span.
type SpanRecord struct {
	ID       SpanID        `json:"id"`
	Parent   SpanID        `json:"parent,omitempty"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"durationNs"`
	Err      string        `json:"err,omitempty"`
	Attrs    []SpanAttr    `json:"attrs,omitempty"`
}

// traceBuf accumulates the spans of one root request until the root span
// ends, at which point the tail-sampling decision is made once for the
// whole tree. Spans that finish after the root (async job work spawned by
// a SUBMIT that already acked) append directly to the store iff the trace
// was kept.
type traceBuf struct {
	mu        sync.Mutex
	trace     TraceID
	root      SpanID
	spans     []SpanRecord
	err       bool
	finalized bool
	kept      bool
}

// Span is one in-flight timed operation. All methods are safe on a nil
// receiver, which is what StartSpan returns when tracing is disarmed.
type Span struct {
	tracer *Tracer
	buf    *traceBuf
	trace  TraceID
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	root   bool
	attrs  [MaxSpanAttrs]SpanAttr
	nattrs int
	errMsg string
	ended  atomic.Bool
}

// Trace returns the span's trace ID ("" on nil).
func (s *Span) Trace() TraceID {
	if s == nil {
		return ""
	}
	return s.trace
}

// ID returns the span's ID (0 on nil).
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// Parent returns the parent span's ID (0 on nil or for a root).
func (s *Span) Parent() SpanID {
	if s == nil {
		return 0
	}
	return s.parent
}

// SetAttr annotates the span; attributes past MaxSpanAttrs are dropped.
// Not safe for concurrent use on the same span.
func (s *Span) SetAttr(key, value string) {
	if s == nil || s.nattrs >= MaxSpanAttrs {
		return
	}
	s.attrs[s.nattrs] = SpanAttr{Key: key, Value: value}
	s.nattrs++
}

// Fail marks the span errored; an errored span forces its whole trace to
// be retained by tail sampling.
func (s *Span) Fail(msg string) {
	if s == nil {
		return
	}
	if msg == "" {
		msg = "error"
	}
	s.errMsg = msg
}

// End finishes the span and records it into its trace. Ending a span
// twice (or ending nil) is a no-op.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	s.tracer.finish(s, s.tracer.now())
}

// EndAt is End with a caller-supplied completion time, for call sites
// that already measured the operation on their own clock.
func (s *Span) EndAt(end time.Time) {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	s.tracer.finish(s, end)
}

type spanKey struct{}

// ContextWithSpan returns a context carrying the span as the current
// parent for StartSpan.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom extracts the current span from ctx (nil when absent).
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan starts a child of the context's current span. When the
// context carries no span (tracing disarmed, or the request was not
// sampled) it returns (ctx, nil) at the cost of one context lookup and
// zero allocations; the nil span accepts SetAttr/Fail/End as no-ops.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFrom(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := parent.tracer.child(parent, name)
	return ContextWithSpan(ctx, s), s
}

// TracerOptions configures a Tracer. The zero value traces everything
// into a default-sized store.
type TracerOptions struct {
	// SampleRate is the probability that a trace with no error and no
	// slow-threshold hit is kept. Exactly 0 means the default of 1.0
	// (keep everything); pass a negative rate to keep only errored and
	// slow traces. Values above 1 clamp to 1.
	SampleRate float64
	// SlowThreshold retains every trace whose root span lasts at least
	// this long, regardless of SampleRate. Zero disables the rule.
	SlowThreshold time.Duration
	// Capacity bounds the trace store (default 512 traces); the oldest
	// trace is evicted when full.
	Capacity int
	// MaxSpans bounds the spans buffered per trace (default 256); spans
	// past the bound are counted, not stored.
	MaxSpans int
	// Telemetry, when set, receives the tracer's drop/keep counters.
	Telemetry *Registry
	// Clock, when set, replaces time.Now for span timestamps (tests).
	Clock func() time.Time
}

// TracerOptionsFromFlags maps the server binaries' -trace-sample and
// -trace-slow flag values onto TracerOptions. The flag's 0 means "keep
// only errored and slow traces", which TracerOptions spells as a
// negative rate (its own 0 means "default to 1.0").
func TracerOptionsFromFlags(sample float64, slow time.Duration) TracerOptions {
	if sample == 0 {
		sample = -1
	}
	return TracerOptions{SampleRate: sample, SlowThreshold: slow}
}

// Tracer mints spans, buffers them per trace, and tail-samples finished
// traces into its store. All methods are safe on a nil receiver.
type Tracer struct {
	sample   float64
	slow     time.Duration
	maxSpans int
	clock    func() time.Time
	store    *TraceStore

	spansTotal    *Counter
	tracesKept    *Counter
	tracesSampled *Counter // sampled out (dropped by probability)
	spansOverflow *Counter
	spansLate     *Counter // finished after root finalize, trace dropped
}

// NewTracer builds a tracer from opts.
func NewTracer(opts TracerOptions) *Tracer {
	sample := opts.SampleRate
	switch {
	case sample == 0:
		sample = 1
	case sample < 0:
		sample = 0
	case sample > 1:
		sample = 1
	}
	maxSpans := opts.MaxSpans
	if maxSpans <= 0 {
		maxSpans = 256
	}
	clk := opts.Clock
	if clk == nil {
		clk = time.Now
	}
	t := &Tracer{
		sample:   sample,
		slow:     opts.SlowThreshold,
		maxSpans: maxSpans,
		clock:    clk,
		store:    NewTraceStore(opts.Capacity),
	}
	if reg := opts.Telemetry; reg != nil {
		t.spansTotal = reg.Counter("infogram_trace_spans_total", "spans finished across all traces")
		t.tracesKept = reg.Counter("infogram_traces_kept_total", "traces retained by tail sampling")
		t.tracesSampled = reg.Counter("infogram_traces_dropped_total", "healthy traces dropped by probabilistic sampling")
		t.spansOverflow = reg.Counter("infogram_trace_spans_overflow_total", "spans dropped because their trace hit the per-trace span bound")
		t.spansLate = reg.Counter("infogram_trace_spans_late_dropped_total", "late spans dropped because their trace was not retained")
	}
	return t
}

// Store exposes the tracer's trace store (nil on a nil tracer).
func (t *Tracer) Store() *TraceStore {
	if t == nil {
		return nil
	}
	return t.store
}

func (t *Tracer) now() time.Time {
	if t == nil {
		return time.Now()
	}
	return t.clock()
}

// StartTrace mints a fresh trace rooted at a new span named name, and
// returns a context carrying both the trace ID and the root span. On a
// nil tracer it returns (ctx, nil).
func (t *Tracer) StartTrace(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	return t.join(ctx, NewTraceID(), 0, name)
}

// JoinTrace roots a new span tree under a caller-propagated trace context:
// the root span's trace is the caller's trace ID and its parent is the
// caller's span. On a nil tracer it returns (ctx, nil).
func (t *Tracer) JoinTrace(ctx context.Context, trace TraceID, parent SpanID, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if trace == "" {
		trace = NewTraceID()
	}
	return t.join(ctx, trace, parent, name)
}

func (t *Tracer) join(ctx context.Context, trace TraceID, parent SpanID, name string) (context.Context, *Span) {
	s := &Span{
		tracer: t,
		trace:  trace,
		id:     NewSpanID(),
		parent: parent,
		name:   name,
		start:  t.now(),
		root:   true,
	}
	s.buf = &traceBuf{trace: trace, root: s.id}
	return ContextWithSpan(WithTrace(ctx, trace), s), s
}

// child mints a non-root span under parent, sharing its trace buffer.
func (t *Tracer) child(parent *Span, name string) *Span {
	return &Span{
		tracer: t,
		buf:    parent.buf,
		trace:  parent.trace,
		id:     NewSpanID(),
		parent: parent.id,
		name:   name,
		start:  t.now(),
	}
}

// RecordSpan records a pre-measured operation (e.g. the GSI handshake,
// timed before any trace existed) as a finished child of parent. Nil
// parent or nil tracer is a no-op.
func (t *Tracer) RecordSpan(parent *Span, name string, start time.Time, d time.Duration, errMsg string) {
	if t == nil || parent == nil {
		return
	}
	s := t.child(parent, name)
	s.start = start
	s.errMsg = errMsg
	s.ended.Store(true)
	t.finish(s, start.Add(d))
}

// finish appends the span to its trace buffer; the root span's finish
// makes the tail-sampling decision and commits (or drops) the tree.
func (t *Tracer) finish(s *Span, end time.Time) {
	t.spansTotal.Inc()
	rec := SpanRecord{
		ID:       s.id,
		Parent:   s.parent,
		Name:     s.name,
		Start:    s.start,
		Duration: end.Sub(s.start),
		Err:      s.errMsg,
	}
	if rec.Duration < 0 {
		rec.Duration = 0
	}
	if s.nattrs > 0 {
		rec.Attrs = append([]SpanAttr(nil), s.attrs[:s.nattrs]...)
	}
	b := s.buf
	b.mu.Lock()
	if b.finalized {
		// Late span: the root already ended (async work outliving the
		// request, e.g. the job a SUBMIT spawned). Append to the stored
		// trace when it was kept; count the drop otherwise.
		kept := b.kept
		b.mu.Unlock()
		if kept && t.store.AppendSpan(b.trace, rec) {
			return
		}
		t.spansLate.Inc()
		return
	}
	if rec.Err != "" {
		b.err = true
	}
	if len(b.spans) < t.maxSpans {
		b.spans = append(b.spans, rec)
	} else {
		t.spansOverflow.Inc()
	}
	if !s.root {
		b.mu.Unlock()
		return
	}
	keep := b.err || (t.slow > 0 && rec.Duration >= t.slow) || t.sampleHit()
	b.finalized = true
	b.kept = keep
	spans := b.spans
	b.spans = nil
	b.mu.Unlock()
	if !keep {
		t.tracesSampled.Inc()
		return
	}
	t.tracesKept.Inc()
	t.store.Put(TraceRecord{
		Trace:    b.trace,
		Root:     b.root,
		Err:      b.err,
		Start:    s.start,
		Duration: rec.Duration,
		Spans:    spans,
	})
}

func (t *Tracer) sampleHit() bool {
	if t.sample >= 1 {
		return true
	}
	if t.sample <= 0 {
		return false
	}
	return rand.Float64() < t.sample
}
