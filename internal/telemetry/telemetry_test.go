package telemetry

import (
	"bufio"
	"context"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeNilSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Dec()
	h.Observe(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Error("nil metrics must be no-ops")
	}
	var r *Registry
	if r.Counter("x", "") != nil {
		t.Error("nil registry must hand out nil metrics")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil registry exposition: %v", err)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	c := &Counter{}
	c.Add(3)
	c.Add(-2)
	if c.Value() != 3 {
		t.Errorf("counter = %d, want 3", c.Value())
	}
}

// TestBucketBoundaries pins the bucket mapping at the edges: a sample
// exactly on a bound lands in that bucket, one nanosecond more spills into
// the next.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-time.Second, 0}, // negative clamps to zero
		{0, 0},
		{time.Nanosecond, 0},
		{time.Microsecond, 0},                   // exactly bound 0
		{time.Microsecond + time.Nanosecond, 1}, // just over bound 0
		{2 * time.Microsecond, 1},               // exactly bound 1
		{2*time.Microsecond + time.Nanosecond, 2},
		{4 * time.Microsecond, 2},
		{BucketBound(10), 10},
		{BucketBound(10) + time.Nanosecond, 11},
		{BucketBound(NumBuckets - 1), NumBuckets - 1},             // largest finite bound
		{BucketBound(NumBuckets-1) + time.Nanosecond, NumBuckets}, // overflow
		{time.Hour, NumBuckets},                                   // deep overflow
	}
	for _, tc := range cases {
		h := &Histogram{}
		h.Observe(tc.d)
		snap := h.Snapshot()
		got := -1
		for i, n := range snap.Buckets {
			if n > 0 {
				got = i
				break
			}
		}
		if got != tc.want {
			t.Errorf("Observe(%v): bucket %d, want %d", tc.d, got, tc.want)
		}
		if snap.Count != 1 {
			t.Errorf("Observe(%v): count %d, want 1", tc.d, snap.Count)
		}
	}
}

func TestHistogramSumAndMean(t *testing.T) {
	h := &Histogram{}
	h.Observe(time.Millisecond)
	h.Observe(3 * time.Millisecond)
	snap := h.Snapshot()
	if snap.Sum != 4*time.Millisecond {
		t.Errorf("sum = %v", snap.Sum)
	}
	if snap.Mean() != 2*time.Millisecond {
		t.Errorf("mean = %v", snap.Mean())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := &Histogram{}
	// 100 samples in the (512µs, 1024µs] bucket.
	for i := 0; i < 100; i++ {
		h.Observe(700 * time.Microsecond)
	}
	snap := h.Snapshot()
	p50 := snap.Quantile(0.5)
	if p50 <= 512*time.Microsecond || p50 > 1024*time.Microsecond {
		t.Errorf("p50 = %v, want within (512µs, 1024µs]", p50)
	}
	if q := snap.Quantile(0); q != 0 {
		t.Errorf("q=0 → %v", q)
	}
	if (HistogramSnapshot{}).Quantile(0.99) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
	// Overflow-bucket samples report the largest finite bound.
	h2 := &Histogram{}
	h2.Observe(time.Hour)
	if q := h2.Snapshot().Quantile(0.99); q != BucketBound(NumBuckets-1) {
		t.Errorf("overflow quantile = %v, want %v", q, BucketBound(NumBuckets-1))
	}
}

// TestRegistryIdempotent verifies same-name+labels lookups share state.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reqs_total", "requests", Label{"verb", "submit"})
	b := r.Counter("reqs_total", "requests", Label{"verb", "submit"})
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	other := r.Counter("reqs_total", "requests", Label{"verb", "status"})
	if a == other {
		t.Fatal("different labels must return different counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Error("shared counter state lost")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch must panic")
		}
	}()
	r.Gauge("m", "")
}

// TestConcurrentObserveAndExpose hammers a registry from many goroutines
// while scraping it; run under -race via scripts/check.sh.
func TestConcurrentObserveAndExpose(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "ops")
	g := r.Gauge("inflight", "in flight")
	h := r.Histogram("latency_seconds", "latency")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(time.Duration(i%2000) * time.Microsecond)
				g.Add(-1)
				if i%100 == 0 {
					_ = h.Snapshot()
					var sb strings.Builder
					_ = r.WritePrometheus(&sb)
					// Concurrent registration of a new label variant.
					r.Counter("ops_total", "ops", Label{"w", strconv.Itoa(w)}).Inc()
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8*500 {
		t.Errorf("counter = %d, want %d", c.Value(), 8*500)
	}
	if snap := h.Snapshot(); snap.Count != 8*500 {
		t.Errorf("histogram count = %d, want %d", snap.Count, 8*500)
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
}

// TestPrometheusExposition checks the text format line by line: TYPE
// headers, cumulative monotone buckets, +Inf bucket equal to _count.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("infogram_requests_total", "requests served", Label{"verb", "submit"}).Add(3)
	r.Gauge("infogram_inflight", "in-flight requests").Set(2)
	h := r.Histogram("infogram_request_duration_seconds", "request latency", Label{"verb", "submit"})
	h.Observe(3 * time.Microsecond)
	h.Observe(100 * time.Millisecond)
	h.Observe(time.Hour) // overflow

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	for _, want := range []string{
		"# TYPE infogram_requests_total counter",
		`infogram_requests_total{verb="submit"} 3`,
		"# TYPE infogram_inflight gauge",
		"infogram_inflight 2",
		"# TYPE infogram_request_duration_seconds histogram",
		`infogram_request_duration_seconds_count{verb="submit"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}

	// Buckets must be cumulative and monotone, ending at +Inf == count.
	var last uint64
	var infSeen bool
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "infogram_request_duration_seconds_bucket") {
			continue
		}
		fields := strings.Fields(line)
		n, err := strconv.ParseUint(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if n < last {
			t.Errorf("bucket counts not monotone at %q", line)
		}
		last = n
		if strings.Contains(line, `le="+Inf"`) {
			infSeen = true
			if n != 3 {
				t.Errorf("+Inf bucket = %d, want 3", n)
			}
		}
	}
	if !infSeen {
		t.Error("no +Inf bucket emitted")
	}
}

func TestTraceContext(t *testing.T) {
	id := NewTraceID()
	if len(id) != 16 {
		t.Errorf("trace ID %q: want 16 hex chars", id)
	}
	ctx := WithTrace(context.Background(), id)
	if got := TraceFrom(ctx); got != id {
		t.Errorf("TraceFrom = %q, want %q", got, id)
	}
	if TraceFrom(context.Background()) != "" {
		t.Error("absent trace must be empty")
	}
	if TraceFrom(nil) != "" {
		t.Error("nil ctx must be empty")
	}
	if NewTraceID() == NewTraceID() {
		t.Error("consecutive trace IDs collided")
	}
}
