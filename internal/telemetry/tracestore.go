package telemetry

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// TraceRecord is one retained trace: its root request window plus every
// span the tail sampler committed (late spans append after the fact).
type TraceRecord struct {
	Trace    TraceID       `json:"trace"`
	Root     SpanID        `json:"root"`
	Err      bool          `json:"err,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"durationNs"`
	Spans    []SpanRecord  `json:"spans"`
}

// storeStripes shards the trace store; must be a power of two.
const storeStripes = 8

type storeStripe struct {
	mu      sync.Mutex
	byTrace map[TraceID]*TraceRecord
	order   []TraceID // FIFO insertion order for eviction
}

// TraceStore is a bounded, lock-striped in-process store of retained
// traces. When a stripe is full its oldest trace is evicted (counted, so
// retention loss is never silent). Put merges spans into an existing
// record with the same trace ID — concurrent requests joining the same
// client-minted trace land in one tree.
type TraceStore struct {
	stripes  [storeStripes]storeStripe
	perShard int
	evicted  Counter
}

// DefaultTraceCapacity is the store bound when TracerOptions.Capacity is
// unset.
const DefaultTraceCapacity = 512

// NewTraceStore builds a store holding about cap traces (default
// DefaultTraceCapacity; minimum one per stripe).
func NewTraceStore(capacity int) *TraceStore {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	per := capacity / storeStripes
	if per < 1 {
		per = 1
	}
	s := &TraceStore{perShard: per}
	for i := range s.stripes {
		s.stripes[i].byTrace = make(map[TraceID]*TraceRecord)
	}
	return s
}

// fnv-1a over the trace ID selects the stripe.
func (s *TraceStore) stripe(trace TraceID) *storeStripe {
	h := uint32(2166136261)
	for i := 0; i < len(trace); i++ {
		h ^= uint32(trace[i])
		h *= 16777619
	}
	return &s.stripes[h&(storeStripes-1)]
}

// Put stores rec, merging into any existing record for the same trace:
// spans append, the error bit ORs, and the trace window extends to cover
// both requests. A full stripe evicts its oldest trace.
func (s *TraceStore) Put(rec TraceRecord) {
	if s == nil {
		return
	}
	st := s.stripe(rec.Trace)
	st.mu.Lock()
	if cur, ok := st.byTrace[rec.Trace]; ok {
		cur.Spans = append(cur.Spans, rec.Spans...)
		cur.Err = cur.Err || rec.Err
		curEnd := cur.Start.Add(cur.Duration)
		recEnd := rec.Start.Add(rec.Duration)
		if rec.Start.Before(cur.Start) {
			cur.Start = rec.Start
		}
		end := curEnd
		if recEnd.After(end) {
			end = recEnd
		}
		cur.Duration = end.Sub(cur.Start)
		st.mu.Unlock()
		return
	}
	if len(st.order) >= s.perShard {
		oldest := st.order[0]
		st.order = st.order[1:]
		delete(st.byTrace, oldest)
		s.evicted.Inc()
	}
	cp := rec
	st.byTrace[rec.Trace] = &cp
	st.order = append(st.order, rec.Trace)
	st.mu.Unlock()
}

// AppendSpan adds a late span to an already-stored trace, extending the
// trace window to cover it. It reports whether the trace was present.
func (s *TraceStore) AppendSpan(trace TraceID, rec SpanRecord) bool {
	if s == nil {
		return false
	}
	st := s.stripe(trace)
	st.mu.Lock()
	defer st.mu.Unlock()
	cur, ok := st.byTrace[trace]
	if !ok {
		return false
	}
	cur.Spans = append(cur.Spans, rec)
	if rec.Err != "" {
		cur.Err = true
	}
	if end := rec.Start.Add(rec.Duration); end.After(cur.Start.Add(cur.Duration)) {
		cur.Duration = end.Sub(cur.Start)
	}
	return true
}

// Get returns a deep copy of the stored trace, or false.
func (s *TraceStore) Get(trace TraceID) (TraceRecord, bool) {
	if s == nil {
		return TraceRecord{}, false
	}
	st := s.stripe(trace)
	st.mu.Lock()
	defer st.mu.Unlock()
	cur, ok := st.byTrace[trace]
	if !ok {
		return TraceRecord{}, false
	}
	return copyRecord(cur), true
}

// Snapshot returns deep copies of every stored trace, newest first.
func (s *TraceStore) Snapshot() []TraceRecord {
	if s == nil {
		return nil
	}
	var out []TraceRecord
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		for _, trace := range st.order {
			out = append(out, copyRecord(st.byTrace[trace]))
		}
		st.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	return out
}

// Len returns the number of stored traces.
func (s *TraceStore) Len() int {
	if s == nil {
		return 0
	}
	n := 0
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		n += len(st.byTrace)
		st.mu.Unlock()
	}
	return n
}

// Evicted returns the count of traces dropped to make room.
func (s *TraceStore) Evicted() int64 {
	if s == nil {
		return 0
	}
	return s.evicted.Value()
}

func copyRecord(r *TraceRecord) TraceRecord {
	cp := *r
	cp.Spans = append([]SpanRecord(nil), r.Spans...)
	return cp
}

// traceDebugPayload is the /debug/traces JSON shape.
type traceDebugPayload struct {
	Traces    []TraceRecord   `json:"traces"`
	Evicted   int64           `json:"evicted"`
	Exemplars []debugExemplar `json:"exemplars,omitempty"`
}

type debugExemplar struct {
	Metric string        `json:"metric"`
	Labels []Label       `json:"labels,omitempty"`
	Bucket string        `json:"bucketLe"`
	Trace  TraceID       `json:"trace"`
	Value  time.Duration `json:"valueNs"`
}

// TraceDebugHandler serves the tracer's retained traces (newest first) as
// JSON, together with trace-ID exemplars gathered from reg's latency
// histograms — the glue from a p99 bucket to a concrete trace.
func TraceDebugHandler(t *Tracer, reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var payload traceDebugPayload
		if t != nil {
			payload.Traces = t.Store().Snapshot()
			payload.Evicted = t.Store().Evicted()
		}
		if payload.Traces == nil {
			payload.Traces = []TraceRecord{}
		}
		for _, p := range reg.Snapshot() {
			if p.Kind != KindHistogram {
				continue
			}
			for i, ex := range p.Hist.Exemplars {
				if ex == nil {
					continue
				}
				le := "+Inf"
				if i < NumBuckets {
					le = BucketBound(i).String()
				}
				payload.Exemplars = append(payload.Exemplars, debugExemplar{
					Metric: p.Name,
					Labels: p.Labels,
					Bucket: le,
					Trace:  ex.Trace,
					Value:  ex.Value,
				})
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(payload)
	})
}
