// Package integration_test exercises whole-deployment scenarios that span
// several subsystems: the Figure 2 baseline (separate GRAM + MDS, two
// protocols) against the Figure 4 unified InfoGram deployment, and the
// gradual-transition story where both run side by side.
package integration_test

import (
	"context"
	"strconv"
	"testing"
	"time"

	"infogram/internal/core"
	"infogram/internal/gram"
	"infogram/internal/gsi"
	"infogram/internal/job"
	"infogram/internal/mds"
	"infogram/internal/provider"
	"infogram/internal/scheduler"
)

// deployment is a complete simulated grid site: security fabric, a shared
// provider registry, and whichever services a scenario starts.
type deployment struct {
	trust   *gsi.TrustStore
	gridmap *gsi.Gridmap
	svcCred *gsi.Credential
	user    *gsi.Credential
	reg     *provider.Registry
}

func newDeployment(t *testing.T) *deployment {
	t.Helper()
	now := time.Now()
	ca, err := gsi.NewCA("/O=Grid/CN=Integration CA", time.Hour, now)
	if err != nil {
		t.Fatal(err)
	}
	svcCred, _ := ca.IssueIdentity("/O=Grid/CN=site-service", time.Hour, now)
	user, _ := ca.IssueIdentity("/O=Grid/CN=alice", time.Hour, now)
	gm := gsi.NewGridmap()
	gm.Add("/O=Grid/CN=alice", "alice")

	reg := provider.NewRegistry(nil)
	reg.Register(&provider.StaticProvider{
		KeywordName: "CPULoad",
		Values:      provider.Attributes{{Name: "load1", Value: "2"}},
	}, provider.RegisterOptions{TTL: time.Minute})

	return &deployment{
		trust:   gsi.NewTrustStore(ca.Certificate()),
		gridmap: gm,
		svcCred: svcCred,
		user:    user,
		reg:     reg,
	}
}

func (d *deployment) backends() gram.Backends {
	fn := scheduler.NewFunc(scheduler.TrustedMode, scheduler.Budgets{})
	fn.RegisterFunc("noop", func(ctx context.Context, sb *scheduler.Sandbox, args []string, stdin string) (string, error) {
		return "done", nil
	})
	return gram.Backends{Func: fn, Exec: &scheduler.Fork{}}
}

func TestFigure2TwoProtocolBaseline(t *testing.T) {
	// The baseline workflow: a client that wants to pick a resource by
	// CPU load and then run a job must (a) speak the MDS protocol to a
	// GRIS on one port, then (b) speak GRAMP to a GRAM on another port —
	// two connections, two protocol codecs.
	d := newDeployment(t)

	gramSvc := gram.NewService(gram.Config{
		Credential: d.svcCred, Trust: d.trust, Gridmap: d.gridmap,
		Backends: d.backends(),
	})
	gramAddr, err := gramSvc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer gramSvc.Close()

	gris := mds.NewGRIS(mds.GRISConfig{
		ResourceName: "site", Registry: d.reg,
		Credential: d.svcCred, Trust: d.trust,
	})
	grisAddr, err := gris.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer gris.Close()

	// Protocol 1: MDS search.
	mcl, err := mds.Dial(grisAddr, d.user, d.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer mcl.Close()
	entries, err := mcl.Search(mds.SearchRequest{Filter: "(kw=CPULoad)"})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := entries[0].Get("CPULoad:load1"); v != "2" {
		t.Fatalf("load = %q", v)
	}

	// Protocol 2: GRAMP submit.
	gcl, err := gram.Dial(gramAddr, d.user, d.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer gcl.Close()
	contact, err := gcl.Submit("&(executable=noop)(jobtype=func)")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := gcl.WaitTerminal(ctx, contact, 5*time.Millisecond)
	if err != nil || st.State != job.Done {
		t.Fatalf("job: %v %v", st, err)
	}

	// The structural cost of Figure 2: two connections to two ports.
	if gramSvc.AcceptedConns() != 1 || gris.AcceptedConns() != 1 {
		t.Errorf("connections: gram=%d gris=%d", gramSvc.AcceptedConns(), gris.AcceptedConns())
	}
	if gramAddr == grisAddr {
		t.Error("baseline services share a port")
	}
	// And the protocols are genuinely disjoint: GRAM rejects info
	// queries outright.
	if _, err := gcl.Submit("&(info=CPULoad)"); err == nil {
		t.Error("GRAM accepted an information query")
	}
}

func TestGradualTransition(t *testing.T) {
	// §6.5: "we provide the option to move to a different Information
	// provider while enabling a gradual transition." One site runs
	// InfoGram AND keeps its MDS face: old MDS clients and new InfoGram
	// clients see the same information simultaneously.
	d := newDeployment(t)
	svc := core.NewService(core.Config{
		ResourceName: "site",
		Credential:   d.svcCred, Trust: d.trust, Gridmap: d.gridmap,
		Registry: d.reg,
		Backends: d.backends(),
	})
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	gris := svc.GRIS()
	grisAddr, err := gris.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer gris.Close()

	// Old-world client.
	mcl, err := mds.Dial(grisAddr, d.user, d.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer mcl.Close()
	oldView, err := mcl.Search(mds.SearchRequest{Filter: "(kw=CPULoad)"})
	if err != nil {
		t.Fatal(err)
	}

	// New-world client.
	icl, err := core.Dial(addr, d.user, d.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer icl.Close()
	newView, err := icl.QueryRaw("&(info=CPULoad)")
	if err != nil {
		t.Fatal(err)
	}

	oldLoad, _ := oldView[0].Get("CPULoad:load1")
	newLoad, _ := newView.Entries[0].Get("CPULoad:load1")
	if oldLoad != newLoad {
		t.Errorf("views diverge: MDS %q vs InfoGram %q", oldLoad, newLoad)
	}
	// Both views hit the same cache: the provider executed once.
	g, _ := d.reg.Lookup("CPULoad")
	if execs := g.CacheStats().Execs; execs != 1 {
		t.Errorf("provider executed %d times across both protocols", execs)
	}
}

func TestGIISHierarchy(t *testing.T) {
	// GIIS aggregates can stack: a top-level VO index registers a
	// site-level index, which registers the site's GRISes — the
	// decentralized aggregation model of §3.
	d := newDeployment(t)
	mkGRIS := func(name, load string) *mds.GRIS {
		reg := provider.NewRegistry(nil)
		reg.Register(&provider.StaticProvider{
			KeywordName: "CPULoad",
			Values:      provider.Attributes{{Name: "load1", Value: load}},
		}, provider.RegisterOptions{TTL: time.Minute})
		g := mds.NewGRIS(mds.GRISConfig{
			ResourceName: name, Registry: reg,
			Credential: d.svcCred, Trust: d.trust,
		})
		if _, err := g.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { g.Close() })
		return g
	}
	g1 := mkGRIS("siteA.res1", "1")
	g2 := mkGRIS("siteA.res2", "3")

	siteIndex := mds.NewGIIS(mds.GIISConfig{OrgName: "siteA", Credential: d.svcCred, Trust: d.trust})
	if _, err := siteIndex.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer siteIndex.Close()
	siteIndex.Register(g1.Addr())
	siteIndex.Register(g2.Addr())

	voIndex := mds.NewGIIS(mds.GIISConfig{OrgName: "vo", Credential: d.svcCred, Trust: d.trust})
	if _, err := voIndex.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer voIndex.Close()
	voIndex.Register(siteIndex.Addr())

	cl, err := mds.Dial(voIndex.Addr(), d.user, d.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	entries, err := cl.Search(mds.SearchRequest{Filter: "(kw=CPULoad)"})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries through two-level hierarchy = %d", len(entries))
	}
	// Numeric selection through the hierarchy.
	entries, err = cl.Search(mds.SearchRequest{Filter: "(&(kw=CPULoad)(CPULoad:load1<=2))"})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("filtered entries = %d", len(entries))
	}
	if r, _ := entries[0].Get("resource"); r != "siteA.res1" {
		t.Errorf("resource = %q", r)
	}
}

func TestGRAMClientAgainstInfoGram(t *testing.T) {
	// The paper's backwards-compatibility claim at the protocol level:
	// "This Job Execution service within J-GRAM is protocol-compatible
	// with the C-GRAM distributed with the Globus Toolkit" — and InfoGram
	// keeps that protocol, so an unmodified GRAM client can submit, poll,
	// signal, and cancel jobs against an InfoGram service.
	d := newDeployment(t)
	svc := core.NewService(core.Config{
		ResourceName: "site",
		Credential:   d.svcCred, Trust: d.trust, Gridmap: d.gridmap,
		Registry: d.reg,
		Backends: d.backends(),
	})
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// A plain GRAM client, knowing nothing about InfoGram.
	cl, err := gram.Dial(addr, d.user, d.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	contact, err := cl.Submit("&(executable=noop)(jobtype=func)")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := cl.WaitTerminal(ctx, contact, 5*time.Millisecond)
	if err != nil || st.State != job.Done || st.Stdout != "done" {
		t.Fatalf("GRAM client against InfoGram: %+v %v", st, err)
	}
	// Cancellation through the same handle.
	contact2, err := cl.Submit("&(executable=/bin/sleep)(arguments=30)")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := cl.Cancel(contact2); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	st, err = cl.WaitTerminal(ctx, contact2, 5*time.Millisecond)
	if err != nil || st.State != job.Failed {
		t.Errorf("cancelled job = %+v %v", st, err)
	}
}

func TestManyResourcesOneBrokerScan(t *testing.T) {
	// A wider Figure 4 deployment: 5 InfoGram resources, a client walking
	// all of them over the unified protocol, verifying per-resource DNs.
	d := newDeployment(t)
	addrs := make([]string, 5)
	for i := range addrs {
		reg := provider.NewRegistry(nil)
		reg.Register(&provider.StaticProvider{
			KeywordName: "Resource",
			Values:      provider.Attributes{{Name: "idx", Value: strconv.Itoa(i)}},
		}, provider.RegisterOptions{TTL: time.Minute})
		svc := core.NewService(core.Config{
			ResourceName: "node" + strconv.Itoa(i),
			Credential:   d.svcCred, Trust: d.trust, Gridmap: d.gridmap,
			Registry: reg,
			Backends: d.backends(),
		})
		addr, err := svc.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { svc.Close() })
		addrs[i] = addr
	}
	for i, addr := range addrs {
		cl, err := core.Dial(addr, d.user, d.trust)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.QueryRaw("&(info=Resource)")
		cl.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := res.Entries[0].Get("Resource:idx"); v != strconv.Itoa(i) {
			t.Errorf("node %d reports idx %q", i, v)
		}
	}
}
