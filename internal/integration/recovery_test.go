// Kill-and-restart suite: the durability acceptance scenario for the
// write-ahead journal. A gatekeeper with a state directory accepts a batch
// of jobs, is killed mid-flight with half of them still running, and a
// second gatekeeper on the same directory replays the journal: terminal
// jobs answer STATUS with their recorded output under their original
// contacts, interrupted jobs run to completion (observed through both
// STATUS and the original callback contact), and jobs whose backend no
// longer exists come back FAILED with a recovery annotation instead of
// vanishing.
package integration_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"infogram/internal/core"
	"infogram/internal/gram"
	"infogram/internal/job"
	"infogram/internal/journal"
	"infogram/internal/scheduler"
	"infogram/internal/telemetry"
)

// recoveryBackends builds the scheduler tier for one gatekeeper
// generation: "noop" completes instantly, "block" parks until release is
// closed (standing in for a long-running job the crash interrupts). The
// queue backend is optional so the second generation can come up without
// it and exercise the cannot-re-attach path.
func recoveryBackends(release <-chan struct{}, withQueue bool) (gram.Backends, func()) {
	fn := scheduler.NewFunc(scheduler.TrustedMode, scheduler.Budgets{})
	fn.RegisterFunc("noop", func(ctx context.Context, sb *scheduler.Sandbox, args []string, stdin string) (string, error) {
		return "done", nil
	})
	fn.RegisterFunc("block", func(ctx context.Context, sb *scheduler.Sandbox, args []string, stdin string) (string, error) {
		select {
		case <-release:
			return "released", nil
		case <-ctx.Done():
			return "", ctx.Err()
		}
	})
	b := gram.Backends{Func: fn, Exec: &scheduler.Fork{}}
	cleanup := func() {}
	if withQueue {
		q := scheduler.NewQueue(scheduler.QueueConfig{Name: "recovery", Slots: 2, Executor: fn})
		b.Queue = q
		cleanup = q.Close
	}
	return b, cleanup
}

func TestJournalKillAndRestartRecovery(t *testing.T) {
	d := newDeployment(t)
	stateDir := t.TempDir()

	// One callback listener outlives both gatekeeper generations, exactly
	// like a real client would: the callback contact is baked into each
	// job's xRSL, so the recovered service notifies the same address.
	listener, err := gram.NewCallbackListener()
	if err != nil {
		t.Fatal(err)
	}
	defer listener.Close()

	// --- Generation A: accept the batch, then die mid-flight. ---
	jnlA, recA, err := journal.Open(journal.Options{
		Dir: stateDir,
		// Tiny rotation/snapshot thresholds so the live service exercises
		// rotation, snapshotting, and compaction before the crash.
		SegmentBytes:  1024,
		SnapshotEvery: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recA.Jobs) != 0 {
		t.Fatalf("fresh state dir recovered %d jobs", len(recA.Jobs))
	}
	releaseA := make(chan struct{})
	defer close(releaseA) // unblock generation A's orphaned goroutines
	backendsA, cleanupA := recoveryBackends(releaseA, true)
	defer cleanupA()
	svcA := core.NewService(core.Config{
		ResourceName: "recovery-site",
		Credential:   d.svcCred, Trust: d.trust, Gridmap: d.gridmap,
		Registry: d.reg,
		Backends: backendsA,
		Journal:  jnlA,
	})
	addrA, err := svcA.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	clA, err := core.Dial(addrA, d.user, d.trust)
	if err != nil {
		t.Fatal(err)
	}

	submit := func(cl *core.Client, spec string) string {
		t.Helper()
		contact, err := cl.Submit(spec)
		if err != nil {
			t.Fatalf("submit %q: %v", spec, err)
		}
		return contact
	}
	cb := "(callback=" + listener.Contact() + ")"

	// Three jobs finish before the crash...
	var doneContacts []string
	for i := 0; i < 3; i++ {
		doneContacts = append(doneContacts,
			submit(clA, fmt.Sprintf("&(executable=noop)(jobtype=func)(arguments=%d)%s", i, cb)))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, c := range doneContacts {
		if st, err := clA.WaitTerminal(ctx, c, 2*time.Millisecond); err != nil || st.State != job.Done {
			t.Fatalf("pre-crash job %s: %+v %v", c, st, err)
		}
	}

	// ...two func jobs and one queue job are mid-flight when it hits. A
	// restart budget on one of them proves resumption re-runs the
	// interrupted attempt instead of granting a fresh budget.
	blockContacts := []string{
		submit(clA, "&(executable=block)(jobtype=func)"+cb),
		submit(clA, "&(executable=block)(jobtype=func)(restart=2)"+cb),
	}
	queueContact := submit(clA, "&(executable=block)(jobtype=queue)"+cb)
	inflight := append(append([]string{}, blockContacts...), queueContact)

	// The journal appends an event strictly before the callback fires, so
	// an ACTIVE notification proves the ACTIVE record is on disk.
	waitActive := func(want []string) {
		t.Helper()
		pending := make(map[string]bool, len(want))
		for _, c := range want {
			pending[c] = true
		}
		timeout := time.After(10 * time.Second)
		for len(pending) > 0 {
			select {
			case ev := <-listener.Events():
				if ev.State == job.Active {
					delete(pending, ev.Contact)
				}
			case <-timeout:
				t.Fatalf("jobs never reached ACTIVE: %v", pending)
			}
		}
	}
	waitActive(inflight)

	// Hard kill: no graceful drain, no journal close ceremony beyond what
	// a dying process gets, and a torn half-record at the journal tail —
	// the on-disk signature of a crash mid-append.
	clA.Close()
	svcA.Close()
	segs, err := filepath.Glob(filepath.Join(stateDir, "journal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no journal segments in %s: %v", stateDir, err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x42, 0x42, 0x42}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// --- Generation B: same state directory, no queue backend. ---
	telB := telemetry.NewRegistry()
	jnlB, recB, err := journal.Open(journal.Options{Dir: stateDir, Telemetry: telB})
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	if !recB.TornTail {
		t.Error("torn tail record was not detected")
	}
	if got := len(recB.Jobs); got != 6 {
		t.Fatalf("replayed %d jobs; want 6", got)
	}
	releaseB := make(chan struct{})
	close(releaseB) // generation B's "block" completes immediately
	backendsB, _ := recoveryBackends(releaseB, false)
	svcB := core.NewService(core.Config{
		ResourceName: "recovery-site",
		Credential:   d.svcCred, Trust: d.trust, Gridmap: d.gridmap,
		Registry:  d.reg,
		Backends:  backendsB,
		Journal:   jnlB,
		Telemetry: telB,
	})
	addrB, err := svcB.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer svcB.Close()
	resumed, err := svcB.RecoverJournal(recB)
	if err != nil {
		t.Fatalf("RecoverJournal: %v", err)
	}
	if len(resumed) != len(inflight) {
		t.Fatalf("resumed %v; want the %d in-flight jobs %v", resumed, len(inflight), inflight)
	}
	recoveredCounter := telB.Counter("infogram_journal_recovered_jobs_total",
		"non-terminal jobs replayed from the journal and resubmitted at boot")
	if got := recoveredCounter.Value(); got != int64(len(inflight)) {
		t.Errorf("infogram_journal_recovered_jobs_total = %d; want %d", got, len(inflight))
	}

	clB, err := core.Dial(addrB, d.user, d.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer clB.Close()

	// Terminal jobs answer STATUS under their ORIGINAL contacts with the
	// output recorded before the crash.
	for _, c := range doneContacts {
		st, err := clB.Status(c)
		if err != nil {
			t.Fatalf("pre-crash contact %s lost: %v", c, err)
		}
		if st.State != job.Done || st.Stdout != "done" {
			t.Errorf("restored job %s = %+v; want DONE with recorded stdout", c, st)
		}
	}

	// Interrupted func jobs run to completion on the new gatekeeper.
	for _, c := range blockContacts {
		st, err := clB.WaitTerminal(ctx, c, 2*time.Millisecond)
		if err != nil {
			t.Fatalf("resumed job %s: %v", c, err)
		}
		if st.State != job.Done || st.Stdout != "released" {
			t.Errorf("resumed job %s = %+v; want DONE from the re-run attempt", c, st)
		}
	}

	// The queue job's backend is gone: FAILED with the recovery
	// annotation, not silently dropped.
	st, err := clB.WaitTerminal(ctx, queueContact, 2*time.Millisecond)
	if err != nil {
		t.Fatalf("orphaned queue job %s: %v", queueContact, err)
	}
	if st.State != job.Failed || !strings.Contains(st.Error, "recovery:") {
		t.Errorf("orphaned queue job = %+v; want FAILED with a recovery: annotation", st)
	}

	// Every in-flight job's terminal event reached the original callback
	// contact, delivered by the recovered service.
	terminal := make(map[string]job.State)
	timeout := time.After(10 * time.Second)
	for len(terminal) < len(inflight) {
		select {
		case ev := <-listener.Events():
			if ev.State.Terminal() {
				terminal[ev.Contact] = ev.State
			}
		case <-timeout:
			t.Fatalf("terminal callbacks after recovery: got %v", terminal)
		}
	}
	for _, c := range blockContacts {
		if terminal[c] != job.Done {
			t.Errorf("callback for resumed job %s = %v; want DONE", c, terminal[c])
		}
	}
	if terminal[queueContact] != job.Failed {
		t.Errorf("callback for orphaned queue job = %v; want FAILED", terminal[queueContact])
	}
}

// A journaled job interrupted on its LAST attempt re-runs that attempt
// after recovery rather than being abandoned: restart=1 means two
// attempts total, the crash lands mid-attempt-2, and the recovered
// service still drives the job to DONE.
func TestJournalRecoveryHonorsRestartBudget(t *testing.T) {
	d := newDeployment(t)
	stateDir := t.TempDir()

	jnlA, _, err := journal.Open(journal.Options{Dir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	fnA := scheduler.NewFunc(scheduler.TrustedMode, scheduler.Budgets{})
	attempts := make(chan int, 16)
	tries := 0
	block := make(chan struct{})
	defer close(block)
	fnA.RegisterFunc("flaky", func(ctx context.Context, sb *scheduler.Sandbox, args []string, stdin string) (string, error) {
		tries++
		attempts <- tries
		if tries == 1 {
			return "", fmt.Errorf("transient fault")
		}
		<-block // second (= final) attempt is the one the crash interrupts
		return "", ctx.Err()
	})
	svcA := core.NewService(core.Config{
		ResourceName: "restart-site",
		Credential:   d.svcCred, Trust: d.trust, Gridmap: d.gridmap,
		Registry: d.reg,
		Backends: gram.Backends{Func: fnA},
		Journal:  jnlA,
	})
	addrA, err := svcA.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	clA, err := core.Dial(addrA, d.user, d.trust)
	if err != nil {
		t.Fatal(err)
	}
	contact, err := clA.Submit("&(executable=flaky)(jobtype=func)(restart=1)")
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the second attempt to start, so the journaled restart
	// count is 1 — the full budget — when the crash lands.
	timeout := time.After(10 * time.Second)
	for got := 0; got < 2; {
		select {
		case got = <-attempts:
		case <-timeout:
			t.Fatalf("second attempt never started (last=%d)", got)
		}
	}
	// The restart-counter transition journals before the backend runs the
	// attempt, so reaching the function body proves the record is on disk.
	clA.Close()
	svcA.Close()

	jnlB, recB, err := journal.Open(journal.Options{Dir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	if len(recB.Jobs) != 1 || recB.Jobs[0].Restarts != 1 {
		t.Fatalf("replayed %+v; want the one job at restart count 1", recB.Jobs)
	}
	fnB := scheduler.NewFunc(scheduler.TrustedMode, scheduler.Budgets{})
	ran := make(chan struct{}, 16)
	fnB.RegisterFunc("flaky", func(ctx context.Context, sb *scheduler.Sandbox, args []string, stdin string) (string, error) {
		ran <- struct{}{}
		return "recovered-run", nil
	})
	svcB := core.NewService(core.Config{
		ResourceName: "restart-site",
		Credential:   d.svcCred, Trust: d.trust, Gridmap: d.gridmap,
		Registry: d.reg,
		Backends: gram.Backends{Func: fnB},
		Journal:  jnlB,
	})
	addrB, err := svcB.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer svcB.Close()
	if _, err := svcB.RecoverJournal(recB); err != nil {
		t.Fatal(err)
	}
	clB, err := core.Dial(addrB, d.user, d.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer clB.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := clB.WaitTerminal(ctx, contact, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != job.Done || st.Stdout != "recovered-run" {
		t.Fatalf("recovered job = %+v; want DONE from the re-run final attempt", st)
	}
	if st.Restarts != 1 {
		t.Errorf("restarts = %d; the re-run must consume the journaled budget, not reset it", st.Restarts)
	}
	// Exactly one re-run: the budget was exhausted, so no third attempt.
	select {
	case <-ran:
	default:
		t.Fatal("generation B never ran the job")
	}
	select {
	case <-ran:
		t.Fatal("recovery granted an extra attempt beyond the restart budget")
	case <-time.After(100 * time.Millisecond):
	}
}
