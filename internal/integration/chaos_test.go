// Chaos suite: every failpoint in internal/faultinject exercised through a
// full client→service round trip, verifying the degradation paths the
// ROADMAP's MDS performance studies motivate — retries absorb transport
// faults, deadlines cut off wedged peers, and provider failures degrade
// queries instead of sinking them.
package integration_test

import (
	"context"
	"errors"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"infogram/internal/core"
	"infogram/internal/faultinject"
	"infogram/internal/job"
	"infogram/internal/provider"
	"infogram/internal/scheduler"
	"infogram/internal/telemetry"
)

// chaosRetry keeps chaos tests fast: near-instant backoff, a few attempts.
var chaosRetry = core.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}

// startInfoGram starts an InfoGram service for one chaos scenario and
// returns its address plus the telemetry registry to assert against.
func startInfoGram(t *testing.T, d *deployment, mutate func(*core.Config)) (string, *telemetry.Registry) {
	t.Helper()
	tel := telemetry.NewRegistry()
	cfg := core.Config{
		ResourceName: "chaos-site",
		Credential:   d.svcCred, Trust: d.trust, Gridmap: d.gridmap,
		Registry:  d.reg,
		Backends:  d.backends(),
		Telemetry: tel,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	svc := core.NewService(cfg)
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return addr, tel
}

func contextWithTimeout(t *testing.T) (context.Context, context.CancelFunc) {
	t.Helper()
	return context.WithTimeout(context.Background(), 10*time.Second)
}

func retryClient(t *testing.T, addr string, d *deployment) (*core.Client, *telemetry.Counter) {
	t.Helper()
	ctel := telemetry.NewRegistry()
	retries := ctel.Counter("infogram_client_retries_total",
		"transparent client retries after transient connect, handshake, or wire failures")
	cl, err := core.DialWithOptions(addr, d.user, d.trust, core.Options{
		Retry:          chaosRetry,
		RequestTimeout: 2 * time.Second,
		Telemetry:      ctel,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl, retries
}

// wire.read=error*1 — the fault lands on whichever side reads next (both
// sides of an in-process round trip share the failpoint); either way the
// exchange fails as a transient transport error and the retry policy
// recovers it.
func TestChaosWireReadErrorRetried(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	d := newDeployment(t)
	addr, _ := startInfoGram(t, d, nil)
	cl, retries := retryClient(t, addr, d)

	before := faultinject.Triggered(faultinject.WireRead)
	faultinject.Arm(faultinject.WireRead, faultinject.Action{Err: errors.New("read cable cut"), Count: 1})
	if err := cl.Ping(); err != nil {
		t.Fatalf("Ping did not survive one injected read fault: %v", err)
	}
	if got := faultinject.Triggered(faultinject.WireRead) - before; got != 1 {
		t.Fatalf("wire.read fired %d times; want 1", got)
	}
	if retries.Value() == 0 {
		t.Fatal("recovery happened without a counted retry")
	}
}

// wire.write=error*1 — the client's own write of the request fails; the
// connection is torn down and the request replayed on a fresh one.
func TestChaosWireWriteErrorRetried(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	d := newDeployment(t)
	addr, _ := startInfoGram(t, d, nil)
	cl, retries := retryClient(t, addr, d)

	faultinject.Arm(faultinject.WireWrite, faultinject.Action{Err: errors.New("write cable cut"), Count: 1})
	res, err := cl.QueryRaw("&(info=CPULoad)")
	if err != nil {
		t.Fatalf("query did not survive one injected write fault: %v", err)
	}
	if v, _ := res.Entries[0].Get("CPULoad:load1"); v != "2" {
		t.Fatalf("post-retry reply corrupted: %v", res.Entries)
	}
	if retries.Value() == 0 {
		t.Fatal("recovery happened without a counted retry")
	}
}

// wire.read=drop*1 against a client WITHOUT retries: the reply frame is
// discarded and the bounded call reports a deadline error instead of
// hanging forever.
func TestChaosWireDropTimesOutWithoutRetry(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	d := newDeployment(t)
	addr, _ := startInfoGram(t, d, nil)
	cl, err := core.DialWithOptions(addr, d.user, d.trust, core.Options{
		RequestTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	faultinject.Arm(faultinject.WireRead, faultinject.Action{Drop: true, Count: 1})
	start := time.Now()
	if err := cl.Ping(); err == nil {
		t.Fatal("Ping succeeded although its reply was dropped")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dropped reply stalled the client for %v", elapsed)
	}
}

// wire.mux=drop*1 — one mux'd response is discarded inside the client
// demultiplexer while three sibling requests are in flight on the same
// authenticated connection. Exactly the poisoned call times out; the
// siblings complete, the connection survives (no re-handshake), and a
// follow-up request reuses it.
func TestChaosMuxDropFailsOneCallAlone(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	d := newDeployment(t)
	addr, tel := startInfoGram(t, d, nil)
	// No retry policy: a retried call would mask whether the fault stayed
	// contained to one request.
	cl, err := core.DialWithOptions(addr, d.user, d.trust, core.Options{
		RequestTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Warm up before arming so the drop lands on one of the concurrent
	// calls, then record the handshake count to prove the connection is
	// never replaced.
	if _, err := cl.QueryRaw("&(info=CPULoad)"); err != nil {
		t.Fatalf("warm-up query: %v", err)
	}
	authOK := tel.Counter("infogram_auth_total", "GSI handshake outcomes",
		telemetry.Label{Key: "outcome", Value: "ok"})
	handshakes := authOK.Value()

	before := faultinject.Triggered(faultinject.WireMux)
	faultinject.Arm(faultinject.WireMux, faultinject.Action{Drop: true, Count: 1})

	const calls = 4
	errs := make([]error, calls)
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = cl.QueryRaw("&(info=CPULoad)")
		}(i)
	}
	wg.Wait()

	failed := 0
	for i, err := range errs {
		if err == nil {
			continue
		}
		failed++
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("call %d failed with %v; want its own deadline, not a transport error", i, err)
		}
	}
	if failed != 1 {
		t.Fatalf("%d of %d concurrent calls failed; the dropped response must fail exactly one", failed, calls)
	}
	if got := faultinject.Triggered(faultinject.WireMux) - before; got != 1 {
		t.Fatalf("wire.mux fired %d times; want 1", got)
	}

	// The surviving connection keeps serving: no reconnect, no handshake.
	if _, err := cl.QueryRaw("&(info=CPULoad)"); err != nil {
		t.Fatalf("follow-up query on the surviving connection: %v", err)
	}
	if got := authOK.Value(); got != handshakes {
		t.Fatalf("handshakes went %d -> %d; the poisoned call tore down the shared connection", handshakes, got)
	}
}

// gsi.handshake=error*1 — connection establishment itself retries: the
// first handshake dies, the second connects the client.
func TestChaosHandshakeFaultRetriedOnDial(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	d := newDeployment(t)
	addr, _ := startInfoGram(t, d, nil)

	faultinject.Arm(faultinject.GSIHandshake, faultinject.Action{Err: errors.New("handshake torn"), Count: 1})
	before := faultinject.Triggered(faultinject.GSIHandshake)
	cl, retries := retryClient(t, addr, d)
	if err := cl.Ping(); err != nil {
		t.Fatalf("Ping after retried dial: %v", err)
	}
	if faultinject.Triggered(faultinject.GSIHandshake) == before {
		t.Fatal("handshake failpoint never fired")
	}
	if retries.Value() == 0 {
		t.Fatal("dial recovered without a counted retry")
	}
}

// provider.collect=hang*1 with -provider-timeout: the acceptance scenario.
// A query spanning two keywords, one of whose providers hangs past the
// per-provider deadline, returns a degraded PARTIAL reply — not an error,
// not a hang — and bumps infogram_requests_degraded_total.
func TestChaosProviderHangDegradesQuery(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	d := newDeployment(t)
	d.reg.Register(&provider.StaticProvider{
		KeywordName: "Memory",
		Values:      provider.Attributes{{Name: "free", Value: "512"}},
	}, provider.RegisterOptions{TTL: time.Minute})
	addr, tel := startInfoGram(t, d, func(cfg *core.Config) {
		cfg.ProviderTimeout = 100 * time.Millisecond
	})
	cl, _ := retryClient(t, addr, d)

	faultinject.Arm(faultinject.ProviderCollect, faultinject.Action{Hang: true, Count: 1})
	start := time.Now()
	res, err := cl.QueryRaw("&(info=CPULoad)(info=Memory)")
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("degraded query returned an error instead of a partial reply: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("query took %v; the provider timeout did not bound the hang", elapsed)
	}
	if !res.Degraded {
		t.Fatalf("reply not marked degraded:\n%s", res.Raw)
	}
	// One keyword made it through, and the status entry names the other.
	var gotData, gotStatus bool
	for _, e := range res.Entries {
		if v, ok := e.Get("CPULoad:load1"); ok && v == "2" {
			gotData = true
		}
		if v, ok := e.Get("Memory:free"); ok && v == "512" {
			gotData = true
		}
		if oc, _ := e.Get("objectclass"); oc == core.DegradedObjectClass {
			gotStatus = true
			if _, ok := e.Get("missing"); !ok {
				t.Errorf("degraded status entry lists no missing keyword: %v", e)
			}
		}
	}
	if !gotData {
		t.Fatalf("no surviving keyword data in degraded reply:\n%s", res.Raw)
	}
	if !gotStatus {
		t.Fatalf("no degraded status entry in reply:\n%s", res.Raw)
	}
	degraded := tel.Counter("infogram_requests_degraded_total",
		"information replies answered partially because a provider failed or timed out")
	if degraded.Value() != 1 {
		t.Fatalf("infogram_requests_degraded_total = %d; want 1", degraded.Value())
	}
}

// provider.collect=error*1 armed while the registry fans out over eight
// keywords in parallel: exactly one keyword degrades, the other seven
// arrive intact, and the reply's status entry names the lost keyword.
func TestChaosProviderErrorDuringParallelFanout(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	d := newDeployment(t)
	keywords := []string{"CPULoad"}
	for _, kw := range []string{"Extra0", "Extra1", "Extra2", "Extra3", "Extra4", "Extra5", "Extra6"} {
		d.reg.Register(&provider.StaticProvider{
			KeywordName: kw,
			Values:      provider.Attributes{{Name: "v", Value: "1"}},
		}, provider.RegisterOptions{TTL: 0})
		keywords = append(keywords, kw)
	}
	addr, tel := startInfoGram(t, d, func(cfg *core.Config) {
		cfg.ProviderTimeout = time.Second
	})
	cl, _ := retryClient(t, addr, d)

	var filter strings.Builder
	filter.WriteByte('&')
	for _, kw := range keywords {
		filter.WriteString("(info=" + kw + ")")
	}
	before := faultinject.Triggered(faultinject.ProviderCollect)
	faultinject.Arm(faultinject.ProviderCollect, faultinject.Action{Err: errors.New("fanout casualty"), Count: 1})
	res, err := cl.QueryRaw(filter.String())
	if err != nil {
		t.Fatalf("degraded query returned an error instead of a partial reply: %v", err)
	}
	if got := faultinject.Triggered(faultinject.ProviderCollect) - before; got != 1 {
		t.Fatalf("provider.collect fired %d times; want 1", got)
	}
	if !res.Degraded {
		t.Fatalf("reply not marked degraded:\n%s", res.Raw)
	}
	// Exactly one keyword is missing; the other seven answered.
	var missing, answered int
	for _, e := range res.Entries {
		if oc, _ := e.Get("objectclass"); oc == core.DegradedObjectClass {
			for _, a := range e.Attrs {
				if a.Name == "missing" {
					missing++
				}
			}
			continue
		}
		for _, kw := range keywords {
			if _, ok := e.Get(kw + ":load1"); ok {
				answered++
			} else if _, ok := e.Get(kw + ":v"); ok {
				answered++
			}
		}
	}
	if missing != 1 {
		t.Fatalf("degraded status lists %d missing keywords; want exactly 1:\n%s", missing, res.Raw)
	}
	if answered != len(keywords)-1 {
		t.Fatalf("%d keywords answered; want %d:\n%s", answered, len(keywords)-1, res.Raw)
	}
	degraded := tel.Counter("infogram_requests_degraded_total",
		"information replies answered partially because a provider failed or timed out")
	if degraded.Value() != 1 {
		t.Fatalf("infogram_requests_degraded_total = %d; want 1", degraded.Value())
	}
}

// gram.spawn=error*1 — a submission the server refuses is a protocol
// answer, not a transport fault: the client reports it and must NOT retry,
// because replaying could run the job twice.
func TestChaosGramSpawnErrorNotRetried(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	d := newDeployment(t)
	addr, _ := startInfoGram(t, d, nil)
	cl, retries := retryClient(t, addr, d)

	faultinject.Arm(faultinject.GramSpawn, faultinject.Action{Err: errors.New("spawn refused"), Count: 1})
	_, err := cl.Submit("&(executable=noop)(jobtype=func)")
	if err == nil {
		t.Fatal("Submit succeeded despite the armed spawn fault")
	}
	if !strings.Contains(err.Error(), "injected") {
		t.Fatalf("error does not surface the injected fault: %v", err)
	}
	if retries.Value() != 0 {
		t.Fatalf("submission was retried %d times; submissions must never retry", retries.Value())
	}
	// The fault consumed its count: the same client can now submit.
	contact, err := cl.Submit("&(executable=noop)(jobtype=func)")
	if err != nil {
		t.Fatalf("submit after fault: %v", err)
	}
	ctx, cancel := contextWithTimeout(t)
	defer cancel()
	if st, err := cl.WaitTerminal(ctx, contact, 5*time.Millisecond); err != nil || st.State != job.Done {
		t.Fatalf("job after fault: %+v %v", st, err)
	}
}

// scheduler.dispatch=error*1 — the fault fires after the submission is
// accepted, inside the batch queue: the job lands in Failed with the
// injected message, observable through the normal status protocol.
func TestChaosSchedulerDispatchFailsJob(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	d := newDeployment(t)
	addr, _ := startInfoGram(t, d, func(cfg *core.Config) {
		fn := scheduler.NewFunc(scheduler.TrustedMode, scheduler.Budgets{})
		fn.RegisterFunc("noop", func(ctx context.Context, sb *scheduler.Sandbox, args []string, stdin string) (string, error) {
			return "done", nil
		})
		q := scheduler.NewQueue(scheduler.QueueConfig{Name: "chaos", Slots: 1, Executor: fn})
		t.Cleanup(q.Close)
		cfg.Backends.Queue = q
	})
	cl, _ := retryClient(t, addr, d)

	faultinject.Arm(faultinject.SchedulerDispatch, faultinject.Action{Err: errors.New("node offline"), Count: 1})
	contact, err := cl.Submit("&(executable=noop)(jobtype=queue)")
	if err != nil {
		t.Fatalf("queued submission should be accepted before dispatch: %v", err)
	}
	ctx, cancel := contextWithTimeout(t)
	defer cancel()
	st, err := cl.WaitTerminal(ctx, contact, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != job.Failed {
		t.Fatalf("state = %v; want Failed", st.State)
	}
	if !strings.Contains(st.Error, "injected") {
		t.Fatalf("job error does not surface the injected fault: %q", st.Error)
	}
}

// A client that feeds bytes too slowly is cut off by the server's request
// timeout: the broken frame is counted and the handler goroutine exits —
// no leak, no unbounded stall.
func TestChaosSlowClientCutOff(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	d := newDeployment(t)
	addr, tel := startInfoGram(t, d, func(cfg *core.Config) {
		cfg.RequestTimeout = 150 * time.Millisecond
	})
	baseline := runtime.NumGoroutine()

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// Drip-feed one byte every 50ms: the frame never completes within the
	// server's deadline.
	closed := make(chan struct{})
	go func() {
		defer close(closed)
		for i := 0; i < 100; i++ {
			if _, err := raw.Write([]byte("A")); err != nil {
				return // server closed the connection: mission accomplished
			}
			time.Sleep(50 * time.Millisecond)
		}
	}()

	frameErrs := tel.Counter("infogram_wire_frame_errors_total", "malformed or oversized protocol frames")
	deadline := time.Now().Add(5 * time.Second)
	for frameErrs.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if frameErrs.Value() == 0 {
		t.Fatal("server never counted the stalled frame as a frame error")
	}
	<-closed // the writer observed the cut-off
	raw.Close()

	// The handler goroutine must be gone: poll until the count returns to
	// (or below) the pre-connection baseline, with slack for unrelated
	// runtime goroutines.
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: baseline %d, now %d — handler leaked", baseline, runtime.NumGoroutine())
}
