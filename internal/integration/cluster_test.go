// Cluster failover suite: the hot-standby acceptance scenarios. A
// journaled leader gatekeeper streams its write-ahead journal to a
// follower over the REPL capability; the follower's mirrored state
// directory must boot an equivalent gatekeeper — terminal jobs answer
// STATUS with their recorded output under their original contacts, and
// in-flight jobs are resubmitted, so a promotion loses no journaled job.
package integration_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"infogram/internal/cluster"
	"infogram/internal/core"
	"infogram/internal/gram"
	"infogram/internal/job"
	"infogram/internal/journal"
	"infogram/internal/scheduler"
	"infogram/internal/telemetry"
)

// clusterBackends builds one gatekeeper generation's scheduler tier:
// "noop" completes instantly, "block" parks until release closes.
func clusterBackends(release <-chan struct{}) gram.Backends {
	fn := scheduler.NewFunc(scheduler.TrustedMode, scheduler.Budgets{})
	fn.RegisterFunc("noop", func(ctx context.Context, sb *scheduler.Sandbox, args []string, stdin string) (string, error) {
		return "done", nil
	})
	fn.RegisterFunc("block", func(ctx context.Context, sb *scheduler.Sandbox, args []string, stdin string) (string, error) {
		select {
		case <-release:
			return "released", nil
		case <-ctx.Done():
			return "", ctx.Err()
		}
	})
	return gram.Backends{Func: fn, Exec: &scheduler.Fork{}}
}

// startLeader boots a journaled gatekeeper on its own state directory.
// The standby's service identity is mapped in the gridmap so the REPL
// connection survives the gatekeeper's identity-mapping gate.
func startLeader(t *testing.T, d *deployment, release <-chan struct{}) (*core.Service, string) {
	t.Helper()
	d.gridmap.Add("/O=Grid/CN=site-service", "standby")
	jnl, rec, err := journal.Open(journal.Options{Dir: t.TempDir(), SegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Jobs) != 0 {
		t.Fatalf("fresh leader journal recovered %d jobs", len(rec.Jobs))
	}
	svc := core.NewService(core.Config{
		ResourceName: "leader-site",
		Credential:   d.svcCred, Trust: d.trust, Gridmap: d.gridmap,
		Registry: d.reg,
		Backends: clusterBackends(release),
		Journal:  jnl,
	})
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return svc, addr
}

// waitState polls STATUS until the job reaches want.
func waitState(t *testing.T, cl *core.Client, contact string, want job.State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := cl.Status(contact)
		if err == nil && st.State == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %v", contact, want)
}

// waitReplicated waits until the follower's applied-record count has
// been stable for a while: the leader has stopped generating records
// (every job is in its observed steady state), so a quiet tap means the
// mirror holds everything the journal does.
func waitReplicated(t *testing.T, fl *cluster.Follower) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	last, stable := int64(-1), 0
	for time.Now().Before(deadline) {
		n := fl.Records()
		if n == last {
			stable++
			if stable >= 5 {
				return
			}
		} else {
			last, stable = n, 0
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("follower live tail never went quiet (records=%d)", last)
}

// promote boots a gatekeeper from the follower's mirrored directory —
// the ordinary crash-restart path — and returns it with the recovered
// journal state.
func promote(t *testing.T, d *deployment, dir string, release <-chan struct{}) (*core.Service, *journal.Recovered, []string) {
	t.Helper()
	jnl, rec, err := journal.Open(journal.Options{Dir: dir, Telemetry: telemetry.NewRegistry()})
	if err != nil {
		t.Fatalf("open mirrored journal: %v", err)
	}
	svc := core.NewService(core.Config{
		ResourceName: "leader-site", // the standby answers for the same resource
		Credential:   d.svcCred, Trust: d.trust, Gridmap: d.gridmap,
		Registry: d.reg,
		Backends: clusterBackends(release),
		Journal:  jnl,
	})
	if _, err := svc.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	resumed, err := svc.RecoverJournal(rec)
	if err != nil {
		t.Fatalf("RecoverJournal on mirrored state: %v", err)
	}
	return svc, rec, resumed
}

// TestFollowerReplayEquivalence: a follower that mirrored both the
// shipped backlog AND the live record tail boots into the same job table
// the leader holds — terminal output preserved verbatim, in-flight jobs
// resubmitted.
func TestFollowerReplayEquivalence(t *testing.T) {
	d := newDeployment(t)
	releaseA := make(chan struct{})
	defer close(releaseA)
	svcA, addrA := startLeader(t, d, releaseA)
	defer svcA.Close()
	clA, err := core.Dial(addrA, d.user, d.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer clA.Close()

	// Pre-sync history: these records reach the follower as shipped
	// backlog (snapshot/segment bytes), not live records.
	var doneContacts, blockContacts []string
	for i := 0; i < 2; i++ {
		c, err := clA.Submit(fmt.Sprintf("&(executable=noop)(jobtype=func)(arguments=pre%d)", i))
		if err != nil {
			t.Fatal(err)
		}
		doneContacts = append(doneContacts, c)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, c := range doneContacts {
		if st, err := clA.WaitTerminal(ctx, c, 2*time.Millisecond); err != nil || st.State != job.Done {
			t.Fatalf("pre-sync job %s: %+v %v", c, st, err)
		}
	}
	c, err := clA.Submit("&(executable=block)(jobtype=func)(arguments=pre)")
	if err != nil {
		t.Fatal(err)
	}
	blockContacts = append(blockContacts, c)
	waitState(t, clA, c, job.Active)

	followDir := t.TempDir()
	fl := cluster.NewFollower(cluster.FollowerConfig{
		Leader:     addrA,
		Dir:        followDir,
		Credential: d.svcCred,
		Trust:      d.trust,
	})
	fl.Start()
	select {
	case <-fl.Synced():
	case <-time.After(10 * time.Second):
		fl.Stop()
		t.Fatal("follower never completed its first backlog sync")
	}

	// Post-sync activity arrives as live REPL-REC records.
	c, err = clA.Submit("&(executable=noop)(jobtype=func)(arguments=live)")
	if err != nil {
		t.Fatal(err)
	}
	doneContacts = append(doneContacts, c)
	if st, err := clA.WaitTerminal(ctx, c, 2*time.Millisecond); err != nil || st.State != job.Done {
		t.Fatalf("live job %s: %+v %v", c, st, err)
	}
	c, err = clA.Submit("&(executable=block)(jobtype=func)(arguments=live)")
	if err != nil {
		t.Fatal(err)
	}
	blockContacts = append(blockContacts, c)
	waitState(t, clA, c, job.Active)
	if fl.Records() == 0 {
		// Not fatal on its own, but the live path is the point of the test.
		waitReplicated(t, fl)
		if fl.Records() == 0 {
			t.Fatal("no live records reached the follower; post-sync activity was not tailed")
		}
	}
	waitReplicated(t, fl)
	fl.Stop()

	// Boot from the mirror and compare against the leader's table.
	releaseB := make(chan struct{})
	close(releaseB)
	svcB, rec, resumed := promote(t, d, followDir, releaseB)
	defer svcB.Close()
	if got, want := len(rec.Jobs), len(doneContacts)+len(blockContacts); got != want {
		t.Fatalf("mirror replayed %d jobs; leader journaled %d", got, want)
	}
	if len(resumed) != len(blockContacts) {
		t.Fatalf("resumed %v; want the %d in-flight jobs %v", resumed, len(blockContacts), blockContacts)
	}
	clB, err := core.Dial(svcB.Addr(), d.user, d.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer clB.Close()
	for _, c := range doneContacts {
		stA, err := clA.Status(c)
		if err != nil {
			t.Fatalf("leader lost contact %s: %v", c, err)
		}
		stB, err := clB.Status(c)
		if err != nil {
			t.Fatalf("mirror lost contact %s: %v", c, err)
		}
		if stB.State != stA.State || stB.Stdout != stA.Stdout {
			t.Errorf("contact %s diverged: leader %+v, mirror %+v", c, stA, stB)
		}
	}
	for _, c := range blockContacts {
		st, err := clB.WaitTerminal(ctx, c, 2*time.Millisecond)
		if err != nil {
			t.Fatalf("resumed job %s on the mirror: %v", c, err)
		}
		if st.State != job.Done || st.Stdout != "released" {
			t.Errorf("resumed job %s = %+v; want DONE from the re-run attempt", c, st)
		}
	}
}

// TestKillLeaderPromoteChaos: the leader dies hard under concurrent
// submissions; the follower detects the loss, promotes, and every job
// the leader journaled is answerable on the standby — terminal jobs with
// their output, in-flight jobs resubmitted and driven to completion.
// Zero journaled-job loss is the acceptance bar.
func TestKillLeaderPromoteChaos(t *testing.T) {
	d := newDeployment(t)
	releaseA := make(chan struct{})
	defer close(releaseA)
	svcA, addrA := startLeader(t, d, releaseA)
	leaderClosed := false
	defer func() {
		if !leaderClosed {
			svcA.Close()
		}
	}()
	clA, err := core.Dial(addrA, d.user, d.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer clA.Close()

	followDir := t.TempDir()
	fl := cluster.NewFollower(cluster.FollowerConfig{
		Leader:        addrA,
		Dir:           followDir,
		Credential:    d.svcCred,
		Trust:         d.trust,
		DialTimeout:   2 * time.Second,
		ResyncBackoff: 100 * time.Millisecond,
		FailThreshold: 2,
	})
	fl.Start()
	select {
	case <-fl.Synced():
	case <-time.After(10 * time.Second):
		fl.Stop()
		t.Fatal("follower never synced")
	}

	// Concurrent submission burst while the follower tails live — the
	// chaos element the -race run polices.
	const doneN, blockN = 4, 3
	var (
		mu            sync.Mutex
		doneContacts  []string
		blockContacts []string
		wg            sync.WaitGroup
	)
	for i := 0; i < doneN+blockN; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := core.Dial(addrA, d.user, d.trust)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer cl.Close()
			spec := fmt.Sprintf("&(executable=noop)(jobtype=func)(arguments=%d)", i)
			if i >= doneN {
				spec = fmt.Sprintf("&(executable=block)(jobtype=func)(arguments=%d)", i)
			}
			contact, err := cl.Submit(spec)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			mu.Lock()
			if i >= doneN {
				blockContacts = append(blockContacts, contact)
			} else {
				doneContacts = append(doneContacts, contact)
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, c := range doneContacts {
		if st, err := clA.WaitTerminal(ctx, c, 2*time.Millisecond); err != nil || st.State != job.Done {
			t.Fatalf("pre-kill job %s: %+v %v", c, st, err)
		}
	}
	for _, c := range blockContacts {
		waitState(t, clA, c, job.Active)
	}
	waitReplicated(t, fl)

	// Hard kill. Closing the service also closes its journal, so the
	// follower's stream drops exactly as it would on a machine loss.
	clA.Close()
	svcA.Close()
	leaderClosed = true

	select {
	case <-fl.LeaderLost():
	case <-time.After(15 * time.Second):
		fl.Stop()
		t.Fatal("leader loss was never detected")
	}
	fl.Stop()

	releaseB := make(chan struct{})
	close(releaseB)
	svcB, rec, resumed := promote(t, d, followDir, releaseB)
	defer svcB.Close()
	if got, want := len(rec.Jobs), doneN+blockN; got != want {
		t.Fatalf("promotion lost journaled jobs: replayed %d, leader journaled %d", got, want)
	}
	if len(resumed) != blockN {
		t.Fatalf("resumed %v; want the %d in-flight jobs %v", resumed, blockN, blockContacts)
	}
	clB, err := core.Dial(svcB.Addr(), d.user, d.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer clB.Close()
	for _, c := range doneContacts {
		st, err := clB.Status(c)
		if err != nil {
			t.Fatalf("journaled job %s lost in promotion: %v", c, err)
		}
		if st.State != job.Done || st.Stdout != "done" {
			t.Errorf("promoted job %s = %+v; want DONE with recorded stdout", c, st)
		}
	}
	for _, c := range blockContacts {
		st, err := clB.WaitTerminal(ctx, c, 2*time.Millisecond)
		if err != nil {
			t.Fatalf("in-flight job %s lost in promotion: %v", c, err)
		}
		if st.State != job.Done || st.Stdout != "released" {
			t.Errorf("in-flight job %s = %+v; want DONE from the promoted re-run", c, st)
		}
	}
}
