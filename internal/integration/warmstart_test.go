// Warm-restart suite: the durability acceptance scenario for the response
// cache snapshot. A service with a state directory and the response cache
// enabled answers a keyed query population, is shut down, and a second
// service on the same directory restores the snapshot: previously cached
// keys are answered from the snapshot with ZERO provider invocations
// (verified by provider-execution counters), and a corrupted snapshot
// degrades to a cold start that still answers correctly.
package integration_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"infogram/internal/core"
	"infogram/internal/provider"
	"infogram/internal/telemetry"
)

const warmKeys = 16

// warmGen is one service generation over a shared cache state directory:
// its own registry (the same population every generation, exactly as a
// restarted process rebuilds it from config) with a per-generation
// provider-execution counter.
type warmGen struct {
	svc   *core.Service
	cl    *core.Client
	tel   *telemetry.Registry
	execs *atomic.Int64
}

func startWarmGen(t *testing.T, d *deployment, stateDir string) *warmGen {
	t.Helper()
	g := &warmGen{execs: &atomic.Int64{}, tel: telemetry.NewRegistry()}
	reg := provider.NewRegistry(nil)
	reg.Register(provider.NewFuncProvider("Payload", func(ctx context.Context) (provider.Attributes, error) {
		g.execs.Add(1)
		attrs := make(provider.Attributes, 0, warmKeys)
		for i := 0; i < warmKeys; i++ {
			attrs = append(attrs, provider.Attr{
				Name: fmt.Sprintf("key%04d", i), Value: "payload-value",
			})
		}
		return attrs, nil
	}), provider.RegisterOptions{TTL: time.Hour})
	g.svc = core.NewService(core.Config{
		ResourceName: "warm-site",
		Credential:   d.svcCred, Trust: d.trust, Gridmap: d.gridmap,
		Registry:      reg,
		Backends:      d.backends(),
		Telemetry:     g.tel,
		CacheTTL:      time.Hour,
		CacheStateDir: stateDir,
	})
	addr, err := g.svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	g.cl, err = core.Dial(addr, d.user, d.trust)
	if err != nil {
		g.svc.Close()
		t.Fatal(err)
	}
	return g
}

func (g *warmGen) close() {
	g.cl.Close()
	g.svc.Close()
}

// queryKeys issues the keyed population — one distinct filter per key, so
// each key occupies its own response-cache slot — and fails on any wrong
// answer.
func (g *warmGen) queryKeys(t *testing.T) {
	t.Helper()
	for i := 0; i < warmKeys; i++ {
		res, err := g.cl.QueryRaw(fmt.Sprintf("&(info=Payload)(filter=\"Payload:key%04d*\")", i))
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
		if len(res.Entries) != 1 {
			t.Fatalf("key %d: %d entries; want the one filtered Payload entry", i, len(res.Entries))
		}
		if v, _ := res.Entries[0].Get(fmt.Sprintf("Payload:key%04d", i)); v != "payload-value" {
			t.Fatalf("key %d: wrong value %q", i, v)
		}
	}
}

func warmTelValue(reg *telemetry.Registry, name string) int64 {
	for _, p := range reg.Snapshot() {
		if p.Name == name {
			return p.Value
		}
	}
	return 0
}

func TestCacheSnapshotKillAndRestart(t *testing.T) {
	d := newDeployment(t)
	stateDir := t.TempDir()

	// --- Generation A: fill the cache, shut down (final snapshot). ---
	genA := startWarmGen(t, d, stateDir)
	genA.queryKeys(t)
	if got := genA.execs.Load(); got != 1 {
		// One provider execution fills the hour-long per-keyword cache; all
		// sixteen keyed renderings read from it.
		t.Fatalf("generation A executed the provider %d times; want 1", got)
	}
	genA.queryKeys(t) // all response-cache hits now
	if got := genA.execs.Load(); got != 1 {
		t.Fatalf("repeat queries executed the provider (%d executions)", got)
	}
	genA.close() // Close writes the final snapshot

	snapPath := filepath.Join(stateDir, "respcache.snap")
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatalf("no snapshot after shutdown: %v", err)
	}

	// --- Generation B: restore, answer the same keys with ZERO provider
	// invocations. ---
	genB := startWarmGen(t, d, stateDir)
	if got := warmTelValue(genB.tel, "infogram_cache_restored_entries"); got < warmKeys {
		t.Fatalf("restored %d entries; want >= %d", got, warmKeys)
	}
	genB.queryKeys(t)
	if got := genB.execs.Load(); got != 0 {
		t.Fatalf("restarted server executed the provider %d times; want 0 (snapshot answers)", got)
	}
	genB.close()

	// --- Generation C: a corrupted snapshot degrades to a cold start. ---
	blob, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	// Byte 8 is the first CRC-covered payload byte of the header frame (the
	// 'I' of the snapshot magic): flipping it is a guaranteed checksum
	// mismatch, not a torn tail.
	blob[8] ^= 0xFF
	if err := os.WriteFile(snapPath, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	genC := startWarmGen(t, d, stateDir)
	defer genC.close()
	if got := warmTelValue(genC.tel, "infogram_cache_restore_cold_total"); got != 1 {
		t.Fatalf("cold-start counter = %d; want 1", got)
	}
	if got := warmTelValue(genC.tel, "infogram_cache_restored_entries"); got != 0 {
		t.Fatalf("corrupt snapshot restored %d entries; want 0", got)
	}
	genC.queryKeys(t) // still answers correctly, via the provider
	if got := genC.execs.Load(); got != 1 {
		t.Fatalf("cold generation executed the provider %d times; want 1", got)
	}
}
