// Distributed-tracing suite: wire-propagated trace context across a full
// deployment. A client-minted trace ID rides a pooled connection into the
// service, the server joins it, and the resulting span tree — handshake,
// dispatch, per-provider collection, scheduler run, journal appends — is
// queryable back out through the selftrace information provider, like any
// other piece of resource information (the paper's unification thesis
// applied to the service's own internals).
package integration_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"infogram/internal/core"
	"infogram/internal/faultinject"
	"infogram/internal/journal"
	"infogram/internal/provider"
	"infogram/internal/telemetry"
)

// startTracedInfoGram starts an InfoGram service with a write-ahead
// journal (FsyncAlways, so every submit appends and syncs in-request) and
// returns its address plus the service handle for tracer access.
func startTracedInfoGram(t *testing.T, d *deployment) (string, *core.Service) {
	t.Helper()
	jnl, _, err := journal.Open(journal.Options{Dir: t.TempDir(), Fsync: journal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	svc := core.NewService(core.Config{
		ResourceName: "trace-site",
		Credential:   d.svcCred, Trust: d.trust, Gridmap: d.gridmap,
		Registry:  d.reg,
		Backends:  d.backends(),
		Journal:   jnl,
		Telemetry: telemetry.NewRegistry(),
	})
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return addr, svc
}

// spanNames collects the distinct span names of a stored trace.
func spanNames(rec telemetry.TraceRecord) map[string]int {
	names := map[string]int{}
	for _, s := range rec.Spans {
		names[s.Name]++
	}
	return names
}

// waitForSpans polls the service's trace store until the trace contains
// every wanted span name (late spans from async job work land after the
// submit acks).
func waitForSpans(t *testing.T, svc *core.Service, trace telemetry.TraceID, wanted ...string) telemetry.TraceRecord {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		rec, ok := svc.Tracer().Store().Get(trace)
		if ok {
			names := spanNames(rec)
			missing := ""
			for _, w := range wanted {
				if names[w] == 0 {
					missing = w
					break
				}
			}
			if missing == "" {
				return rec
			}
			if time.Now().After(deadline) {
				t.Fatalf("trace %s never grew span %q; has %v", trace, missing, names)
			}
		} else if time.Now().After(deadline) {
			t.Fatalf("trace %s never stored", trace)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// The acceptance path: one query and one job submit through a pool, both
// under a client-minted trace ID, produce a single coherent span tree —
// handshake, dispatch, provider collection, scheduler run, and journal
// appends — and the tree is readable back through info=selftrace.
func TestEndToEndTraceTree(t *testing.T) {
	d := newDeployment(t)
	addr, svc := startTracedInfoGram(t, d)
	pool := core.NewPool(addr, d.user, d.trust, core.PoolOptions{})
	defer pool.Close()

	clientTrace := telemetry.NewTraceID()
	ctx := telemetry.WithTrace(context.Background(), clientTrace)

	res, err := pool.QueryRaw(ctx, "&(info=CPULoad)")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if v, _ := res.Entries[0].Get("CPULoad:load1"); v != "2" {
		t.Fatalf("query answer corrupted: %v", res.Entries)
	}
	// A multi-request mixing an info part and a job part, on the same
	// trace: its parts span concurrently under one dispatch root.
	waitCtx, cancel := contextWithTimeout(t)
	defer cancel()
	mcl, err := pool.Checkout(waitCtx)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := mcl.SubmitMultiContext(ctx, "+(&(info=CPULoad))(&(executable=noop)(jobtype=func))")
	pool.Checkin(mcl)
	if err != nil {
		t.Fatalf("multi submit: %v", err)
	}
	contact := ""
	for _, p := range parts {
		if p.Err != nil {
			t.Fatalf("multi part failed: %v", p.Err)
		}
		if p.Kind == "job" {
			contact = p.Contact
		}
	}
	if contact == "" {
		t.Fatalf("no job part in multi response: %+v", parts)
	}
	for {
		st, err := pool.Status(waitCtx, contact)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		if st.State.Terminal() {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	rec := waitForSpans(t, svc, clientTrace,
		"gsi.handshake", "request:SUBMIT", "part", "info.collect", "provider.collect",
		"cache.lookup", "gram.spawn", "scheduler.run", "journal.append", "journal.fsync")
	if rec.Trace != clientTrace {
		t.Fatalf("tree rooted at %s, want the client-minted %s", rec.Trace, clientTrace)
	}
	// Structure: gram.spawn parents under the SUBMIT dispatch tree, and
	// the async scheduler.run parents under gram.spawn even though it
	// finished after the submit acked.
	byID := map[telemetry.SpanID]telemetry.SpanRecord{}
	for _, s := range rec.Spans {
		byID[s.ID] = s
	}
	for _, s := range rec.Spans {
		switch s.Name {
		case "scheduler.run":
			if byID[s.Parent].Name != "gram.spawn" {
				t.Errorf("scheduler.run parent = %q, want gram.spawn", byID[s.Parent].Name)
			}
		case "request:SUBMIT":
			if s.Parent != 0 {
				t.Errorf("dispatch root has parent %v; the client sent no span", s.Parent)
			}
		}
		if s.Name != "gsi.handshake" && s.Duration < 0 {
			t.Errorf("span %s has negative duration %v", s.Name, s.Duration)
		}
	}

	// The same tree, served as information: one selftrace attribute per
	// trace, one per span, namespaced under the selftrace keyword.
	tres, err := pool.QueryRaw(context.Background(), "&(info=selftrace)")
	if err != nil {
		t.Fatalf("selftrace query: %v", err)
	}
	prefix := "selftrace:trace." + string(clientTrace)
	var header string
	spanAttrs := 0
	for _, e := range tres.Entries {
		for _, a := range e.Attrs {
			if a.Name == prefix {
				header = a.Value
			}
			if strings.HasPrefix(a.Name, prefix+".span.") {
				spanAttrs++
				if !strings.Contains(a.Value, "duration_us=") {
					t.Errorf("span attr %s lacks a duration: %q", a.Name, a.Value)
				}
			}
		}
	}
	if header == "" {
		t.Fatalf("info=selftrace did not expose trace %s", clientTrace)
	}
	if !strings.Contains(header, fmt.Sprintf("spans=%d", len(rec.Spans))) && spanAttrs == 0 {
		t.Errorf("selftrace header %q / %d span attrs inconsistent with store (%d spans)",
			header, spanAttrs, len(rec.Spans))
	}
	if spanAttrs < len(rec.Spans) {
		t.Errorf("selftrace rendered %d span attrs, store has %d", spanAttrs, len(rec.Spans))
	}
}

// Concurrent pooled calls, each under its own client-minted trace, must
// land in distinct server-side trees each rooted at its client's trace ID
// (run under -race by scripts/check.sh).
func TestTraceConcurrentPoolCalls(t *testing.T) {
	d := newDeployment(t)
	addr, svc := startTracedInfoGram(t, d)
	pool := core.NewPool(addr, d.user, d.trust, core.PoolOptions{Size: 4})
	defer pool.Close()

	const calls = 16
	traces := make([]telemetry.TraceID, calls)
	var wg sync.WaitGroup
	errs := make([]error, calls)
	for i := 0; i < calls; i++ {
		traces[i] = telemetry.NewTraceID()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := telemetry.WithTrace(context.Background(), traces[i])
			_, errs[i] = pool.QueryRaw(ctx, "&(info=CPULoad)")
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	for i, trace := range traces {
		rec, ok := svc.Tracer().Store().Get(trace)
		if !ok {
			t.Errorf("call %d: trace %s not stored", i, trace)
			continue
		}
		names := spanNames(rec)
		if names["request:SUBMIT"] == 0 {
			t.Errorf("call %d: tree %v lacks its dispatch span", i, names)
		}
		roots := 0
		for _, s := range rec.Spans {
			if s.Parent == 0 && s.Name == "request:SUBMIT" {
				roots++
			}
		}
		if roots != 1 {
			t.Errorf("call %d: %d dispatch roots, want exactly 1", i, roots)
		}
	}
}

// TestTraceChaos: tracing under fault injection. A provider fault leaves
// a finished error span in a retained trace (tail sampling keeps errored
// traces even at sample rate 0), and a wire.read fault mid-call is
// absorbed by the client retry with the replayed request still tracing
// end to end.
func TestTraceChaos(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	d := newDeployment(t)
	// Keep only errored traces: SampleRate < 0.
	jnl, _, err := journal.Open(journal.Options{Dir: t.TempDir(), Fsync: journal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	svc := core.NewService(core.Config{
		ResourceName: "trace-chaos-site",
		Credential:   d.svcCred, Trust: d.trust, Gridmap: d.gridmap,
		Registry:     d.reg,
		Backends:     d.backends(),
		Journal:      jnl,
		Telemetry:    telemetry.NewRegistry(),
		TraceOptions: telemetry.TracerOptions{SampleRate: -1},
		// Graceful degradation, so a provider fault degrades the reply
		// (and errors the span) instead of failing the whole query.
		ProviderTimeout: time.Second,
	})
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	cl, err := core.DialWithOptions(addr, d.user, d.trust, core.Options{
		Retry:          chaosRetry,
		RequestTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Healthy traffic is dropped by the negative sample rate.
	healthyTrace := telemetry.NewTraceID()
	if _, err := cl.QueryRawContext(telemetry.WithTrace(context.Background(), healthyTrace), "&(info=CPULoad)"); err != nil {
		t.Fatalf("healthy query: %v", err)
	}
	if _, ok := svc.Tracer().Store().Get(healthyTrace); ok {
		t.Fatal("healthy trace retained under sample<0")
	}

	// provider.collect=error*1: the query degrades, and the trace is
	// retained because its provider.collect span finished with an error.
	errTrace := telemetry.NewTraceID()
	faultinject.Arm(faultinject.ProviderCollect, faultinject.Action{Err: errors.New("sensor unplugged"), Count: 1})
	res, err := cl.QueryRawContext(telemetry.WithTrace(context.Background(), errTrace), "&(info=CPULoad)")
	if err != nil {
		t.Fatalf("degraded query errored: %v", err)
	}
	if !res.Degraded {
		t.Fatal("query did not degrade under the provider fault")
	}
	rec, ok := svc.Tracer().Store().Get(errTrace)
	if !ok {
		t.Fatal("errored trace not retained by tail sampling")
	}
	if !rec.Err {
		t.Error("trace error bit unset")
	}
	foundErrSpan := false
	for _, s := range rec.Spans {
		if s.Name == "provider.collect" && s.Err != "" {
			foundErrSpan = true
		}
	}
	if !foundErrSpan {
		t.Errorf("no finished provider.collect error span in %v", spanNames(rec))
	}

	// wire.read=error*1 mid-call: the retry replays the request on a
	// fresh connection, and the replay still joins the client's trace.
	retryTrace := telemetry.NewTraceID()
	faultinject.Arm(faultinject.WireRead, faultinject.Action{Err: errors.New("read cable cut"), Count: 1})
	// Arm a provider error too so the retried trace is retained under
	// the negative sample rate.
	faultinject.Arm(faultinject.ProviderCollect, faultinject.Action{Err: errors.New("sensor unplugged"), Count: 1})
	if _, err := cl.QueryRawContext(telemetry.WithTrace(context.Background(), retryTrace), "&(info=CPULoad)"); err != nil {
		t.Fatalf("query did not survive one injected read fault: %v", err)
	}
	rec, ok = svc.Tracer().Store().Get(retryTrace)
	if !ok {
		t.Fatal("retried request's trace not in the store")
	}
	if names := spanNames(rec); names["request:SUBMIT"] == 0 {
		t.Errorf("retried trace lacks a dispatch span: %v", names)
	}
}

// Interop in both directions: a trace-disabled client against a tracing
// server speaks byte-for-byte the old protocol (the server then mints
// server-local traces), and a tracing client against a trace-disabled
// server takes the ERROR decline and sends unprefixed frames.
func TestTraceOldPeerInterop(t *testing.T) {
	d := newDeployment(t)

	// New server, old client.
	addr, _ := startTracedInfoGram(t, d)
	oldClient, err := core.DialWithOptions(addr, d.user, d.trust, core.Options{DisableTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	defer oldClient.Close()
	res, err := oldClient.QueryRaw("&(info=CPULoad)")
	if err != nil {
		t.Fatalf("old client against tracing server: %v", err)
	}
	if v, _ := res.Entries[0].Get("CPULoad:load1"); v != "2" {
		t.Fatalf("old-client reply corrupted: %v", res.Entries)
	}

	// Old server (tracing disabled), new client: TRACE is declined and
	// requests flow unprefixed.
	d2 := newDeployment(t)
	svc2 := core.NewService(core.Config{
		ResourceName: "pre-trace-site",
		Credential:   d2.svcCred, Trust: d2.trust, Gridmap: d2.gridmap,
		Registry:       d2.reg,
		Backends:       d2.backends(),
		DisableTracing: true,
	})
	addr2, err := svc2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	newClient, err := core.Dial(addr2, d2.user, d2.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer newClient.Close()
	ctx := telemetry.WithTrace(context.Background(), telemetry.NewTraceID())
	if _, err := newClient.QueryRawContext(ctx, "&(info=CPULoad)"); err != nil {
		t.Fatalf("new client against pre-trace server: %v", err)
	}
	if tr := svc2.Tracer(); tr != nil {
		t.Fatal("DisableTracing left a tracer installed")
	}

	// An info=selftrace query against the pre-trace server answers like
	// any unknown keyword would — tracing leaves no schema residue.
	if res, err := newClient.QueryRaw("&(info=all)"); err == nil {
		for _, e := range res.Entries {
			if kw, _ := e.Get("kw"); kw == provider.SelfTraceKeyword {
				t.Error("selftrace provider registered despite DisableTracing")
			}
		}
	}
}
