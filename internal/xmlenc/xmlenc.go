// Package xmlenc renders information-service results as XML, the second
// return format the paper supports next to LDIF (§5.5: "Our positive
// experience with the use of XML schemas as basis for the next generation
// of Information services"; §6.5 format tag). The element model mirrors the
// LDIF record model one-to-one so a client can request either format for
// the same query and see the same data.
package xmlenc

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"strings"
	"sync"

	"infogram/internal/ldif"
)

// bufPool recycles Marshal/MarshalDSML output buffers; rendering on the
// request hot path then allocates only the returned string (plus what
// encoding/xml itself allocates).
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledBuf caps what a returned buffer may retain in the pool.
const maxPooledBuf = 1 << 20

func marshalPooled(encode func(io.Writer, []ldif.Entry) error, entries []ldif.Entry) (string, error) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer func() {
		if buf.Cap() <= maxPooledBuf {
			bufPool.Put(buf)
		}
	}()
	if err := encode(buf, entries); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// xmlResult is the top-level document: a sequence of entries.
type xmlResult struct {
	XMLName xml.Name   `xml:"result"`
	Entries []xmlEntry `xml:"entry"`
}

type xmlEntry struct {
	DN    string    `xml:"dn,attr"`
	Attrs []xmlAttr `xml:"attr"`
}

type xmlAttr struct {
	Name  string `xml:"name,attr"`
	Value string `xml:",chardata"`
}

// Encode writes entries to w as an indented XML document.
func Encode(w io.Writer, entries []ldif.Entry) error {
	doc := xmlResult{Entries: make([]xmlEntry, len(entries))}
	for i, e := range entries {
		xe := xmlEntry{DN: e.DN, Attrs: make([]xmlAttr, len(e.Attrs))}
		for j, a := range e.Attrs {
			xe.Attrs[j] = xmlAttr{Name: a.Name, Value: a.Value}
		}
		doc.Entries[i] = xe
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("xmlenc: encode: %w", err)
	}
	return enc.Flush()
}

// Marshal renders entries as an XML string.
func Marshal(entries []ldif.Entry) (string, error) {
	return marshalPooled(Encode, entries)
}

// Decode parses a document produced by Encode back into entries, enabling
// clients that negotiated format=XML to use the same record model.
func Decode(r io.Reader) ([]ldif.Entry, error) {
	var doc xmlResult
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("xmlenc: decode: %w", err)
	}
	entries := make([]ldif.Entry, len(doc.Entries))
	for i, xe := range doc.Entries {
		e := ldif.Entry{DN: xe.DN}
		for _, a := range xe.Attrs {
			e.Add(a.Name, a.Value)
		}
		entries[i] = e
	}
	return entries, nil
}

// Unmarshal parses an XML string produced by Marshal.
func Unmarshal(s string) ([]ldif.Entry, error) {
	return Decode(strings.NewReader(s))
}
