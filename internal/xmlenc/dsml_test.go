package xmlenc

import (
	"strings"
	"testing"

	"infogram/internal/ldif"
)

func dsmlSample() []ldif.Entry {
	e := ldif.Entry{DN: "kw=Memory, resource=r, o=grid"}
	e.Add("objectclass", "InfoGramProvider")
	e.Add("kw", "Memory")
	e.Add("Memory:total", "1024")
	e.Add("member", "a")
	e.Add("member", "b") // multi-valued
	return []ldif.Entry{e}
}

func TestDSMLShape(t *testing.T) {
	out, err := MarshalDSML(dsmlSample())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`<dsml xmlns="http://www.dsml.org/DSML">`,
		"<directory-entries>",
		`<entry dn="kw=Memory, resource=r, o=grid">`,
		"<oc-value>InfoGramProvider</oc-value>",
		`<attr name="Memory:total">`,
		"<value>1024</value>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DSML output missing %q:\n%s", want, out)
		}
	}
}

func TestDSMLRoundTrip(t *testing.T) {
	entries := dsmlSample()
	out, err := MarshalDSML(entries)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalDSML(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatalf("entries = %d", len(back))
	}
	e := back[0]
	if e.DN != entries[0].DN {
		t.Errorf("DN = %q", e.DN)
	}
	if v, _ := e.Get("objectclass"); v != "InfoGramProvider" {
		t.Errorf("objectclass = %q", v)
	}
	if v, _ := e.Get("Memory:total"); v != "1024" {
		t.Errorf("Memory:total = %q", v)
	}
	if members := e.All("member"); len(members) != 2 || members[1] != "b" {
		t.Errorf("member = %v", members)
	}
}

func TestDSMLMultipleEntries(t *testing.T) {
	e2 := ldif.Entry{DN: "kw=CPU, resource=r, o=grid"}
	e2.Add("CPU:count", "8")
	entries := append(dsmlSample(), e2)
	out, err := MarshalDSML(entries)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalDSML(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("entries = %d", len(back))
	}
	// An entry with no objectclass round-trips without one.
	if _, ok := back[1].Get("objectclass"); ok {
		t.Error("objectclass invented for entry 2")
	}
}

func TestDSMLDecodeGarbage(t *testing.T) {
	if _, err := UnmarshalDSML("nope"); err == nil {
		t.Error("expected decode error")
	}
}

func TestDSMLEmpty(t *testing.T) {
	out, err := MarshalDSML(nil)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalDSML(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Errorf("entries = %d", len(back))
	}
}
