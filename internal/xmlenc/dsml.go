package xmlenc

// DSML v1 support. The paper remarks that beyond LDIF and XML "it is
// straightforward to support other formats such as DSML" (§6.5); this file
// makes the remark true. The encoding follows the DSMLv1 document shape:
// a directory-entries list where objectclass values are carried in a
// dedicated <objectclass> element and other attributes in <attr> elements
// with nested <value> children.

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"infogram/internal/ldif"
)

type dsmlDoc struct {
	XMLName xml.Name    `xml:"dsml"`
	Xmlns   string      `xml:"xmlns,attr"`
	Entries dsmlEntries `xml:"directory-entries"`
}

type dsmlEntries struct {
	Entries []dsmlEntry `xml:"entry"`
}

type dsmlEntry struct {
	DN          string     `xml:"dn,attr"`
	ObjectClass *dsmlOC    `xml:"objectclass,omitempty"`
	Attrs       []dsmlAttr `xml:"attr"`
}

type dsmlOC struct {
	Values []string `xml:"oc-value"`
}

type dsmlAttr struct {
	Name   string   `xml:"name,attr"`
	Values []string `xml:"value"`
}

// dsmlNamespace is the DSMLv1 namespace URI.
const dsmlNamespace = "http://www.dsml.org/DSML"

// EncodeDSML writes entries as a DSMLv1 document.
func EncodeDSML(w io.Writer, entries []ldif.Entry) error {
	doc := dsmlDoc{Xmlns: dsmlNamespace}
	for _, e := range entries {
		de := dsmlEntry{DN: e.DN}
		// Group repeated attribute values, preserving first-appearance
		// order; objectclass values go to the dedicated element.
		order := make([]string, 0, len(e.Attrs))
		grouped := make(map[string][]string, len(e.Attrs))
		for _, a := range e.Attrs {
			if strings.EqualFold(a.Name, "objectclass") {
				if de.ObjectClass == nil {
					de.ObjectClass = &dsmlOC{}
				}
				de.ObjectClass.Values = append(de.ObjectClass.Values, a.Value)
				continue
			}
			if _, seen := grouped[a.Name]; !seen {
				order = append(order, a.Name)
			}
			grouped[a.Name] = append(grouped[a.Name], a.Value)
		}
		for _, name := range order {
			de.Attrs = append(de.Attrs, dsmlAttr{Name: name, Values: grouped[name]})
		}
		doc.Entries.Entries = append(doc.Entries.Entries, de)
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("xmlenc: encode dsml: %w", err)
	}
	return enc.Flush()
}

// MarshalDSML renders entries as a DSML string.
func MarshalDSML(entries []ldif.Entry) (string, error) {
	return marshalPooled(EncodeDSML, entries)
}

// DecodeDSML parses a DSMLv1 document produced by EncodeDSML. Objectclass
// values come first in the reconstructed entry, matching how the LDIF
// renderer emits them.
func DecodeDSML(r io.Reader) ([]ldif.Entry, error) {
	var doc dsmlDoc
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("xmlenc: decode dsml: %w", err)
	}
	entries := make([]ldif.Entry, 0, len(doc.Entries.Entries))
	for _, de := range doc.Entries.Entries {
		e := ldif.Entry{DN: de.DN}
		if de.ObjectClass != nil {
			for _, oc := range de.ObjectClass.Values {
				e.Add("objectclass", oc)
			}
		}
		for _, a := range de.Attrs {
			for _, v := range a.Values {
				e.Add(a.Name, v)
			}
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// UnmarshalDSML parses a DSML string.
func UnmarshalDSML(s string) ([]ldif.Entry, error) {
	return DecodeDSML(strings.NewReader(s))
}
