package xmlenc

import (
	"strings"
	"testing"
	"testing/quick"

	"infogram/internal/ldif"
)

func sample() []ldif.Entry {
	e1 := ldif.Entry{DN: "kw=Memory, resource=r, o=grid"}
	e1.Add("Memory:total", "1024")
	e1.Add("Memory:free", "512")
	e2 := ldif.Entry{DN: "kw=CPU, resource=r, o=grid"}
	e2.Add("CPU:count", "8")
	return []ldif.Entry{e1, e2}
}

func TestMarshalShape(t *testing.T) {
	out, err := Marshal(sample())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<?xml", "<result>", `<entry dn="kw=Memory, resource=r, o=grid">`,
		`<attr name="Memory:total">1024</attr>`, "</result>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	entries := sample()
	out, err := Marshal(entries)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(entries) {
		t.Fatalf("%d entries back, want %d", len(back), len(entries))
	}
	for i := range entries {
		if back[i].DN != entries[i].DN {
			t.Errorf("DN %d = %q", i, back[i].DN)
		}
		for j, a := range entries[i].Attrs {
			if back[i].Attrs[j] != a {
				t.Errorf("attr %d/%d = %+v, want %+v", i, j, back[i].Attrs[j], a)
			}
		}
	}
}

func TestEscaping(t *testing.T) {
	e := ldif.Entry{DN: `dn with <angle> & "quotes"`}
	e.Add("attr", "<value> & 'more'")
	out, err := Marshal([]ldif.Entry{e})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(out)
	if err != nil {
		t.Fatal(err)
	}
	if back[0].DN != e.DN {
		t.Errorf("DN = %q", back[0].DN)
	}
	if v, _ := back[0].Get("attr"); v != "<value> & 'more'" {
		t.Errorf("attr = %q", v)
	}
}

func TestEmptyDocument(t *testing.T) {
	out, err := Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Errorf("got %d entries", len(back))
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Unmarshal("not xml at all"); err == nil {
		t.Error("expected decode error")
	}
}

// TestSameDataBothFormats: the same record set renders to LDIF and XML and
// decodes identically from both (the §6.5 format-tag contract).
func TestSameDataBothFormats(t *testing.T) {
	entries := sample()
	lout, err := ldif.Marshal(entries)
	if err != nil {
		t.Fatal(err)
	}
	xout, err := Marshal(entries)
	if err != nil {
		t.Fatal(err)
	}
	fromL, err := ldif.Unmarshal(lout)
	if err != nil {
		t.Fatal(err)
	}
	fromX, err := Unmarshal(xout)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromL) != len(fromX) {
		t.Fatalf("entry counts differ: %d vs %d", len(fromL), len(fromX))
	}
	for i := range fromL {
		if fromL[i].DN != fromX[i].DN {
			t.Errorf("DN %d differs: %q vs %q", i, fromL[i].DN, fromX[i].DN)
		}
		for j := range fromL[i].Attrs {
			if fromL[i].Attrs[j] != fromX[i].Attrs[j] {
				t.Errorf("attr %d/%d differs: %+v vs %+v", i, j, fromL[i].Attrs[j], fromX[i].Attrs[j])
			}
		}
	}
}

// TestRoundTripProperty: arbitrary XML-safe strings survive.
func TestRoundTripProperty(t *testing.T) {
	sanitize := func(s string) string {
		return strings.Map(func(r rune) rune {
			if r < 0x20 && r != '\t' {
				return -1
			}
			if r == 0xFFFD || !validXMLRune(r) {
				return -1
			}
			return r
		}, s)
	}
	prop := func(dn, name, value string) bool {
		dn = sanitize(dn)
		value = sanitize(value)
		name = sanitizeName(name)
		e := ldif.Entry{DN: dn}
		e.Add(name, value)
		out, err := Marshal([]ldif.Entry{e})
		if err != nil {
			return false
		}
		back, err := Unmarshal(out)
		if err != nil || len(back) != 1 {
			return false
		}
		got, _ := back[0].Get(name)
		return back[0].DN == dn && got == value
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func validXMLRune(r rune) bool {
	return r == 0x9 || r == 0xA || r == 0xD ||
		(r >= 0x20 && r <= 0xD7FF) ||
		(r >= 0xE000 && r <= 0xFFFD) ||
		(r >= 0x10000 && r <= 0x10FFFF)
}

func sanitizeName(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') {
			sb.WriteRune(r)
		}
	}
	if sb.Len() == 0 {
		return "attr"
	}
	return sb.String()
}
