package bytecache

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"infogram/internal/clock"
	"infogram/internal/journal"
)

func snapshotBytes(t *testing.T, c *Cache, meta SnapshotMeta) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := c.WriteSnapshot(&buf, meta); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	clk := clock.NewFake(time.Unix(1000, 0))
	src := New(Options{Shards: 4, Clock: clk})
	for i := 0; i < 100; i++ {
		ttl := time.Duration(0)
		if i%2 == 0 {
			ttl = time.Duration(i+1) * time.Minute
		}
		src.Set(fmt.Appendf(nil, "key-%03d", i), fmt.Appendf(nil, "value-%03d", i), ttl)
	}
	snap := snapshotBytes(t, src, SnapshotMeta{Generation: 7, Digest: 42})

	dst := New(Options{Shards: 8, Clock: clk}) // shard count need not match
	st, meta, err := dst.RestoreSnapshot(bytes.NewReader(snap), RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Generation != 7 || meta.Digest != 42 {
		t.Fatalf("meta = %+v", meta)
	}
	if st.Restored != 100 || st.DroppedExpired != 0 || st.Torn {
		t.Fatalf("stats = %+v", st)
	}
	for i := 0; i < 100; i++ {
		v, ok := dst.Get(fmt.Appendf(nil, "key-%03d", i))
		if !ok || string(v) != fmt.Sprintf("value-%03d", i) {
			t.Fatalf("key %d: got %q, %v", i, v, ok)
		}
	}
}

func TestRestoreKeepsOriginalDeadlines(t *testing.T) {
	clk := clock.NewFake(time.Unix(1000, 0))
	src := New(Options{Shards: 1, Clock: clk})
	src.Set([]byte("short"), []byte("v1"), time.Minute)
	src.Set([]byte("long"), []byte("v2"), time.Hour)
	snap := snapshotBytes(t, src, SnapshotMeta{})

	// 30 minutes pass before the restart: "short" is past its deadline and
	// must be dropped, "long" keeps the remainder of its original TTL.
	clk.Advance(30 * time.Minute)
	dst := New(Options{Shards: 1, Clock: clk})
	st, _, err := dst.RestoreSnapshot(bytes.NewReader(snap), RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Restored != 1 || st.DroppedExpired != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if _, ok := dst.Get([]byte("short")); ok {
		t.Fatal("expired entry resurrected")
	}
	if _, ok := dst.Get([]byte("long")); !ok {
		t.Fatal("unexpired entry missing after restore")
	}
	// The original deadline, not a fresh TTL: 31 more minutes put "long"
	// past its 60-minute life even though it was restored 30 minutes in.
	clk.Advance(31 * time.Minute)
	if _, ok := dst.Get([]byte("long")); ok {
		t.Fatal("restored entry outlived its original deadline")
	}
}

func TestRestoreTornTailKeepsPrefix(t *testing.T) {
	clk := clock.NewFake(time.Unix(1000, 0))
	src := New(Options{Shards: 1, Clock: clk})
	for i := 0; i < 10; i++ {
		src.Set(fmt.Appendf(nil, "key-%d", i), []byte("value"), time.Hour)
	}
	snap := snapshotBytes(t, src, SnapshotMeta{})

	dst := New(Options{Shards: 1, Clock: clk})
	st, _, err := dst.RestoreSnapshot(bytes.NewReader(snap[:len(snap)-7]), RestoreOptions{})
	if err != nil {
		t.Fatalf("torn tail must not error: %v", err)
	}
	if !st.Torn {
		t.Fatal("tear not reported")
	}
	if st.Restored != 9 {
		t.Fatalf("restored %d, want the 9 intact entries", st.Restored)
	}
}

func TestRestoreCorruptionColdStarts(t *testing.T) {
	clk := clock.NewFake(time.Unix(1000, 0))
	src := New(Options{Shards: 1, Clock: clk})
	for i := 0; i < 10; i++ {
		src.Set(fmt.Appendf(nil, "key-%d", i), []byte("value"), time.Hour)
	}
	snap := snapshotBytes(t, src, SnapshotMeta{})

	// Flip a bit in the middle of the entry stream: everything restored so
	// far must be discarded, not just the damaged frame.
	bad := append([]byte(nil), snap...)
	bad[len(bad)/2] ^= 0x10
	dst := New(Options{Shards: 1, Clock: clk})
	st, _, err := dst.RestoreSnapshot(bytes.NewReader(bad), RestoreOptions{})
	if err == nil {
		t.Fatal("corruption must be reported")
	}
	if st.Restored != 0 {
		t.Fatalf("stats claim %d restored after corruption", st.Restored)
	}
	if got := dst.Stats().Entries; got != 0 {
		t.Fatalf("%d entries survived a corrupt restore", got)
	}
	if dst.Set([]byte("k"), []byte("v"), 0); func() bool { _, ok := dst.Get([]byte("k")); return !ok }() {
		t.Fatal("cache unusable after cold start")
	}

	// A corrupt header is refused before anything is restored.
	badHeader := append([]byte(nil), snap...)
	badHeader[9] ^= 0x01
	dst2 := New(Options{Shards: 1, Clock: clk})
	if _, _, err := dst2.RestoreSnapshot(bytes.NewReader(badHeader), RestoreOptions{}); err == nil {
		t.Fatal("corrupt header accepted")
	}
}

func TestRestoreAcceptAndMapKey(t *testing.T) {
	clk := clock.NewFake(time.Unix(1000, 0))
	src := New(Options{Shards: 1, Clock: clk})
	// Keys carry a little-endian generation at offset 0, like the response
	// cache's; generation 3 was current at snapshot time.
	key := func(gen uint64, n int) []byte {
		k := make([]byte, 8)
		for i := 0; i < 8; i++ {
			k[i] = byte(gen >> (8 * i))
		}
		return fmt.Appendf(k, "key-%d", n)
	}
	src.Set(key(3, 1), []byte("current"), time.Hour)
	src.Set(key(2, 2), []byte("orphan"), time.Hour) // older generation
	snap := snapshotBytes(t, src, SnapshotMeta{Generation: 3, Digest: 99})

	// Accept hook refuses a foreign digest.
	dst := New(Options{Shards: 1, Clock: clk})
	_, _, err := dst.RestoreSnapshot(bytes.NewReader(snap), RestoreOptions{
		Accept: func(m SnapshotMeta) bool { return m.Digest == 100 },
	})
	if !errors.Is(err, ErrSnapshotRejected) {
		t.Fatalf("want ErrSnapshotRejected, got %v", err)
	}
	if dst.Stats().Entries != 0 {
		t.Fatal("entries restored despite rejection")
	}

	// GenKeyMapper re-stamps generation 3 keys to generation 8 and drops
	// the orphan.
	st, _, err := dst.RestoreSnapshot(bytes.NewReader(snap), RestoreOptions{
		MapKey: GenKeyMapper(0, 8),
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Restored != 1 || st.DroppedKey != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if v, ok := dst.Get(key(8, 1)); !ok || string(v) != "current" {
		t.Fatalf("re-stamped key: %q, %v", v, ok)
	}
	if _, ok := dst.Get(key(3, 1)); ok {
		t.Fatal("old-generation key still resolves")
	}
}

func TestPersisterLifecycle(t *testing.T) {
	dir := t.TempDir()
	clk := clock.NewFake(time.Unix(1000, 0))
	c := New(Options{Shards: 2, Clock: clk})
	c.Set([]byte("alpha"), []byte("1"), time.Hour)
	c.Set([]byte("beta"), []byte("2"), time.Hour)

	gen := uint64(5)
	p := NewPersister(c, PersistOptions{
		Path:  dir + "/cache.snap",
		Name:  "test",
		Meta:  func() SnapshotMeta { return SnapshotMeta{Generation: gen, Digest: 17} },
		Clock: clk,
	})
	// No file yet: cold boot, no error.
	if st, err := p.Restore(); err != nil || st.Restored != 0 {
		t.Fatalf("missing snapshot: %+v, %v", st, err)
	}
	if err := p.Close(); err != nil { // final snapshot on close
		t.Fatal(err)
	}

	// Same digest, newer generation: restored with keys intact (no MapKey).
	c2 := New(Options{Shards: 2, Clock: clk})
	gen = 6
	p2 := NewPersister(c2, PersistOptions{
		Path:  dir + "/cache.snap",
		Name:  "test",
		Meta:  func() SnapshotMeta { return SnapshotMeta{Generation: gen, Digest: 17} },
		Clock: clk,
	})
	if st, err := p2.Restore(); err != nil || st.Restored != 2 {
		t.Fatalf("restore: %+v, %v", st, err)
	}
	if _, ok := c2.Get([]byte("alpha")); !ok {
		t.Fatal("entry missing after persister restore")
	}

	// Different digest: refused, cold.
	c3 := New(Options{Shards: 2, Clock: clk})
	p3 := NewPersister(c3, PersistOptions{
		Path:  dir + "/cache.snap",
		Name:  "test",
		Meta:  func() SnapshotMeta { return SnapshotMeta{Digest: 18} },
		Clock: clk,
	})
	if st, err := p3.Restore(); !errors.Is(err, ErrSnapshotRejected) || st.Restored != 0 {
		t.Fatalf("foreign digest: %+v, %v", st, err)
	}
}

func TestInfoAndHitTracking(t *testing.T) {
	clk := clock.NewFake(time.Unix(1000, 0))
	c := New(Options{Shards: 1, Clock: clk})
	c.Set([]byte("k"), []byte("v"), time.Minute)

	info, ok := c.Info([]byte("k"))
	if !ok || info.Hits != 0 {
		t.Fatalf("fresh entry: %+v, %v", info, ok)
	}
	if info.Expire != clk.Now().Add(time.Minute).UnixNano() {
		t.Fatalf("expire = %d", info.Expire)
	}
	for i := 0; i < 5; i++ {
		c.Get([]byte("k"))
	}
	if info, _ = c.Info([]byte("k")); info.Hits != 5 {
		t.Fatalf("hits = %d, want 5", info.Hits)
	}
	// Overwrite halves the count instead of resetting it.
	c.Set([]byte("k"), []byte("v2"), time.Minute)
	if info, _ = c.Info([]byte("k")); info.Hits != 2 {
		t.Fatalf("hits after overwrite = %d, want 2", info.Hits)
	}
	// Info is a pure read: no hit/miss accounting.
	st := c.Stats()
	if st.Hits != 5 || st.Misses != 0 {
		t.Fatalf("Info perturbed stats: %+v", st)
	}
	// Expired entries are invisible.
	clk.Advance(2 * time.Minute)
	if _, ok := c.Info([]byte("k")); ok {
		t.Fatal("Info returned an expired entry")
	}
}

func TestRangeSkipsExpired(t *testing.T) {
	clk := clock.NewFake(time.Unix(1000, 0))
	c := New(Options{Shards: 4, Clock: clk})
	c.Set([]byte("live"), []byte("v"), time.Hour)
	c.Set([]byte("dying"), []byte("v"), time.Minute)
	clk.Advance(2 * time.Minute)

	seen := map[string]bool{}
	c.Range(func(v View) bool {
		seen[string(v.Key)] = true
		return true
	})
	if !seen["live"] || seen["dying"] || len(seen) != 1 {
		t.Fatalf("seen = %v", seen)
	}
}

func TestFrameReaderGuardsSnapshotOversize(t *testing.T) {
	// A header frame claiming a payload beyond maxSnapshotPayload must be
	// refused as corruption, not allocated.
	var frame []byte
	frame = journal.AppendFrame(frame, bytes.Repeat([]byte{1}, 16))
	frame[0] = 0xFF
	frame[1] = 0xFF
	frame[2] = 0xFF
	frame[3] = 0x7F
	c := New(Options{Shards: 1})
	if _, _, err := c.RestoreSnapshot(bytes.NewReader(frame), RestoreOptions{}); err == nil {
		t.Fatal("oversize frame accepted")
	}
}

// TestSnapshotGzipRoundTrip: the version-2 layout restores identically to
// version 1, compresses repetitive bodies, and tolerates a torn tail.
func TestSnapshotGzipRoundTrip(t *testing.T) {
	clk := clock.NewFake(time.Unix(1000, 0))
	src := New(Options{Shards: 4, Clock: clk})
	for i := 0; i < 100; i++ {
		val := bytes.Repeat(fmt.Appendf(nil, "attr: value-%03d\n", i), 20)
		src.Set(fmt.Appendf(nil, "key-%03d", i), val, time.Hour)
	}

	var plain, packed bytes.Buffer
	if _, err := src.WriteSnapshot(&plain, SnapshotMeta{Generation: 7, Digest: 42}); err != nil {
		t.Fatal(err)
	}
	if _, err := src.WriteSnapshotGzip(&packed, SnapshotMeta{Generation: 7, Digest: 42}); err != nil {
		t.Fatal(err)
	}
	if packed.Len() >= plain.Len()/2 {
		t.Errorf("gzip snapshot %d bytes vs plain %d — barely compressed", packed.Len(), plain.Len())
	}

	dst := New(Options{Shards: 8, Clock: clk})
	st, meta, err := dst.RestoreSnapshot(bytes.NewReader(packed.Bytes()), RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Generation != 7 || meta.Digest != 42 {
		t.Fatalf("meta = %+v", meta)
	}
	if st.Restored != 100 || st.Torn {
		t.Fatalf("stats = %+v", st)
	}
	for i := 0; i < 100; i++ {
		v, ok := dst.Get(fmt.Appendf(nil, "key-%03d", i))
		if !ok || !bytes.Equal(v, bytes.Repeat(fmt.Appendf(nil, "attr: value-%03d\n", i), 20)) {
			t.Fatalf("key %d: got %d bytes, %v", i, len(v), ok)
		}
	}

	// A truncated gzip stream restores the intact prefix as a torn tail,
	// never an error.
	cut := New(Options{Shards: 2, Clock: clk})
	st, _, err = cut.RestoreSnapshot(bytes.NewReader(packed.Bytes()[:packed.Len()/2]), RestoreOptions{})
	if err != nil {
		t.Fatalf("truncated gzip restore errored: %v", err)
	}
	if !st.Torn {
		t.Error("truncated gzip restore not reported as torn")
	}
	if st.Restored >= 100 {
		t.Errorf("truncated restore claims %d entries", st.Restored)
	}
}

// TestSnapshotMixedCompression: a persister restores the other layout's
// snapshot, so toggling Compress between runs keeps warm restarts.
func TestSnapshotMixedCompression(t *testing.T) {
	clk := clock.NewFake(time.Unix(1000, 0))
	dir := t.TempDir()
	path := dir + "/mixed.snap"

	src := New(Options{Shards: 2, Clock: clk})
	src.Set([]byte("k1"), []byte("v1"), time.Hour)
	src.Set([]byte("k2"), []byte("v2"), time.Hour)

	// Plain writer, compressed-config reader.
	if err := NewPersister(src, PersistOptions{Path: path, Clock: clk}).Snapshot(); err != nil {
		t.Fatal(err)
	}
	warm := New(Options{Shards: 2, Clock: clk})
	st, err := NewPersister(warm, PersistOptions{Path: path, Compress: true, Clock: clk}).Restore()
	if err != nil || st.Restored != 2 {
		t.Fatalf("plain->compressed restore: %+v, %v", st, err)
	}

	// Compressed writer, plain-config reader.
	if err := NewPersister(src, PersistOptions{Path: path, Compress: true, Clock: clk}).Snapshot(); err != nil {
		t.Fatal(err)
	}
	warm2 := New(Options{Shards: 2, Clock: clk})
	st, err = NewPersister(warm2, PersistOptions{Path: path, Clock: clk}).Restore()
	if err != nil || st.Restored != 2 {
		t.Fatalf("compressed->plain restore: %+v, %v", st, err)
	}
	if v, ok := warm2.Get([]byte("k2")); !ok || string(v) != "v2" {
		t.Fatalf("k2 = %q, %v", v, ok)
	}
}
