package bytecache

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"infogram/internal/clock"
)

// FuzzSnapshotRestore feeds arbitrary bytes — seeded with genuine
// snapshots, then truncated and bit-flipped by the fuzzer — through
// RestoreSnapshot. The contract under test: never panic, never leave the
// cache half-poisoned (an error means zero entries survive), and stay
// fully usable afterwards.
func FuzzSnapshotRestore(f *testing.F) {
	clk := clock.NewFake(time.Unix(1000, 0))
	src := New(Options{Shards: 2, Clock: clk})
	for i := 0; i < 8; i++ {
		src.Set(fmt.Appendf(nil, "key-%d", i), bytes.Repeat([]byte{byte(i)}, i*7), time.Hour)
	}
	var whole bytes.Buffer
	if _, err := src.WriteSnapshot(&whole, SnapshotMeta{Generation: 3, Digest: 9}); err != nil {
		f.Fatal(err)
	}
	f.Add(whole.Bytes())
	f.Add(whole.Bytes()[:whole.Len()/2])
	f.Add([]byte{})
	f.Add([]byte("not a snapshot at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		c := New(Options{Shards: 1, Clock: clock.NewFake(time.Unix(2000, 0))})
		st, _, err := c.RestoreSnapshot(bytes.NewReader(data), RestoreOptions{
			MapKey: GenKeyMapper(0, 4),
		})
		if err != nil && st.Restored != 0 {
			t.Fatalf("error %v but %d entries claimed restored", err, st.Restored)
		}
		if err != nil && c.Stats().Entries != 0 {
			t.Fatalf("error %v but %d entries resident", err, c.Stats().Entries)
		}
		// The cache must work normally whatever the restore did.
		c.Set([]byte("probe"), []byte("value"), 0)
		if v, ok := c.Get([]byte("probe")); !ok || string(v) != "value" {
			t.Fatalf("cache unusable after restore: %q, %v", v, ok)
		}
	})
}
