// Package bytecache is a sharded, arena-backed byte cache built for the
// information read path: millions of small rendered blobs (LDIF/DSML
// response bodies, filter projections) looked up by opaque byte keys at
// request rate. The paper's §5.1 cache keeps one value per information
// provider, which is the right shape for a handful of keywords and the
// wrong shape for a GRIS serving millions of distinct filtered results —
// the MDS performance studies show query throughput is decided by whether
// the query path answers from cache without re-evaluating and
// re-rendering.
//
// Design (modeled on GigaCache's bucket/arena split):
//
//   - The key space is split across power-of-two shards by a 64-bit FNV-1a
//     hash; each shard is guarded by one mutex, so concurrent readers of
//     different keys rarely contend.
//   - Each shard stores key and value bytes contiguously in an append-only
//     arena ([]byte). The index is a compact map from key hash to a fixed
//     slot {offset, key length, value length, expiry, LRU tick}; entries
//     carry no per-entry heap allocation beyond their arena bytes.
//   - Get returns a slice aliasing the arena. Arenas are never mutated in
//     place: overwrites and deletes only mark bytes dead, and compaction
//     copies live entries into a fresh arena and swaps it. A blob returned
//     to a reader therefore stays valid (the old arena is garbage-collected
//     when the last reader drops it), which is what lets the service write
//     a cache hit to the wire with zero copies.
//   - Eviction is per-shard and two-stage: expired entries go first, then
//     approximate LRU (sampling the index, evicting the stalest of the
//     sample) until the shard is back under its byte budget.
//   - Compaction is incremental: when a shard's dead bytes cross
//     CompactFraction of its arena, the inserting goroutine rewrites just
//     that shard. No global stop-the-world pass exists.
//
// The hit path — hash, one mutex, one map probe, key compare, tick bump —
// performs zero heap allocations (pinned by testing.AllocsPerRun in the
// package tests).
package bytecache

import (
	"bytes"
	"sync"
	"time"

	"infogram/internal/clock"
	"infogram/internal/telemetry"
)

// Default configuration values.
const (
	// DefaultShards is the shard count when Options.Shards is zero. High
	// enough that a pool of request workers rarely collides on one mutex,
	// low enough that per-shard telemetry stays readable.
	DefaultShards = 64
	// DefaultMaxBytes is the total byte budget when Options.MaxBytes is
	// zero: 256 MiB across all shards.
	DefaultMaxBytes = 256 << 20
	// DefaultCompactFraction triggers a shard compaction when dead bytes
	// exceed this fraction of the shard's arena.
	DefaultCompactFraction = 0.25
	// evictSample is how many index entries an LRU eviction round
	// examines; the stalest of the sample is evicted (approximate LRU, the
	// Redis strategy — exact LRU would cost a list node per entry).
	evictSample = 5
)

// Options configures a Cache.
type Options struct {
	// Shards is the shard count, rounded up to a power of two.
	Shards int
	// MaxBytes is the total live-byte budget, split evenly across shards.
	MaxBytes int64
	// DefaultTTL applies when Set is called with ttl zero. A DefaultTTL of
	// zero makes such entries live until evicted.
	DefaultTTL time.Duration
	// CompactFraction is the dead-bytes/arena-bytes ratio above which a
	// shard's arena is rewritten. Zero selects DefaultCompactFraction.
	CompactFraction float64
	// Clock defaults to the system clock.
	Clock clock.Clock
}

// slot is one index entry: where in the arena the key+value bytes live,
// when the entry expires, and when it was last touched. Slots are stored
// by value in the index map, so an entry costs no heap allocation beyond
// its arena bytes.
type slot struct {
	off    int64 // arena offset of the key bytes (value follows)
	klen   uint32
	vlen   uint32
	expire int64  // unix nanos; 0 = no expiry
	stored int64  // unix nanos when the entry was written
	tick   uint64 // shard LRU clock at last access
	hits   uint32 // reads since stored (halved on overwrite, saturating)
}

func (s slot) size() int64 { return int64(s.klen) + int64(s.vlen) }

// shardTel is the pre-resolved per-shard telemetry, bound once in
// SetTelemetry so the mutating paths never look metrics up by name.
type shardTel struct {
	entries     *telemetry.Gauge
	liveBytes   *telemetry.Gauge
	evictions   *telemetry.Counter
	compactions *telemetry.Counter
}

// shard is one lock domain: an index over an append-only arena.
type shard struct {
	mu    sync.Mutex
	index map[uint64]slot
	arena []byte
	live  int64  // bytes referenced by the index
	dead  int64  // bytes in the arena no longer referenced
	tick  uint64 // LRU clock, bumped on every access

	// stats, guarded by mu
	hits        int64
	misses      int64
	sets        int64
	evictedTTL  int64
	evictedLRU  int64
	compactions int64

	tel shardTel
}

// Cache is the sharded byte cache. All methods are safe for concurrent
// use.
type Cache struct {
	shards    []shard
	mask      uint64
	maxShard  int64 // per-shard live-byte budget
	defTTL    time.Duration
	compactAt float64
	clk       clock.Clock

	// service-wide telemetry; every field is nil-safe, so an untelemetered
	// cache pays only dead branches
	hitsC       *telemetry.Counter
	missesC     *telemetry.Counter
	setsC       *telemetry.Counter
	evictTTLC   *telemetry.Counter
	evictLRUC   *telemetry.Counter
	compactC    *telemetry.Counter
	compactHist *telemetry.Histogram
	residentG   *telemetry.Gauge
	deadG       *telemetry.Gauge
	entriesG    *telemetry.Gauge
}

// New builds a cache.
func New(opts Options) *Cache {
	n := opts.Shards
	if n <= 0 {
		n = DefaultShards
	}
	// Round up to a power of two so shard selection is a mask.
	p := 1
	for p < n {
		p <<= 1
	}
	maxBytes := opts.MaxBytes
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	frac := opts.CompactFraction
	if frac <= 0 || frac >= 1 {
		frac = DefaultCompactFraction
	}
	clk := opts.Clock
	if clk == nil {
		clk = clock.System
	}
	c := &Cache{
		shards:    make([]shard, p),
		mask:      uint64(p - 1),
		maxShard:  maxBytes / int64(p),
		defTTL:    opts.DefaultTTL,
		compactAt: frac,
		clk:       clk,
	}
	if c.maxShard < 1 {
		c.maxShard = 1
	}
	for i := range c.shards {
		c.shards[i].index = make(map[uint64]slot)
	}
	return c
}

// SetTelemetry binds the cache's counters, gauges, and histograms into
// reg: aggregate hit/miss/set/eviction/compaction counters, resident and
// dead byte gauges, a compaction-duration histogram, and per-shard
// occupancy/eviction/compaction series. Call once, before serving.
// Occupancy gauges are maintained incrementally on mutation paths; the
// hit path only increments counters, so it stays allocation-free.
func (c *Cache) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	c.hitsC = reg.Counter("infogram_bytecache_hits_total", "byte-cache reads answered from a stored blob")
	c.missesC = reg.Counter("infogram_bytecache_misses_total", "byte-cache reads that found no fresh blob")
	c.setsC = reg.Counter("infogram_bytecache_sets_total", "byte-cache stores")
	c.evictTTLC = reg.Counter("infogram_bytecache_evictions_total", "byte-cache entries dropped", telemetry.Label{Key: "reason", Value: "ttl"})
	c.evictLRUC = reg.Counter("infogram_bytecache_evictions_total", "byte-cache entries dropped", telemetry.Label{Key: "reason", Value: "lru"})
	c.compactC = reg.Counter("infogram_bytecache_compactions_total", "shard arena rewrites reclaiming dead bytes")
	c.compactHist = reg.Histogram("infogram_bytecache_compaction_duration_seconds", "wall-clock duration of one shard compaction")
	c.residentG = reg.Gauge("infogram_bytecache_resident_bytes", "live bytes referenced by the byte-cache index")
	c.deadG = reg.Gauge("infogram_bytecache_dead_bytes", "arena bytes awaiting compaction")
	c.entriesG = reg.Gauge("infogram_bytecache_entries", "entries resident in the byte cache")
	for i := range c.shards {
		sh := telemetry.Label{Key: "shard", Value: shardLabel(i)}
		c.shards[i].tel = shardTel{
			entries:     reg.Gauge("infogram_bytecache_shard_entries", "entries resident in one byte-cache shard", sh),
			liveBytes:   reg.Gauge("infogram_bytecache_shard_live_bytes", "live bytes in one byte-cache shard", sh),
			evictions:   reg.Counter("infogram_bytecache_shard_evictions_total", "entries evicted from one byte-cache shard", sh),
			compactions: reg.Counter("infogram_bytecache_shard_compactions_total", "arena rewrites of one byte-cache shard", sh),
		}
	}
}

// shardLabel renders a shard index as a fixed-width label value so series
// sort numerically.
func shardLabel(i int) string {
	const digits = "0123456789"
	return string([]byte{digits[(i/100)%10], digits[(i/10)%10], digits[i%10]})
}

// hashBytes is 64-bit FNV-1a: allocation-free, good avalanche for the
// short structured keys the information path builds.
func hashBytes(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// Get looks key up and returns the stored value, aliasing the shard
// arena. The returned slice must be treated as read-only; it remains
// valid after eviction or compaction because arenas are never mutated in
// place. The second result reports whether a fresh entry was found.
func (c *Cache) Get(key []byte) ([]byte, bool) {
	h := hashBytes(key)
	s := &c.shards[h&c.mask]
	now := c.clk.Now().UnixNano()
	s.mu.Lock()
	sl, ok := s.index[h]
	if !ok {
		s.misses++
		s.mu.Unlock()
		c.missesC.Inc()
		return nil, false
	}
	if sl.expire > 0 && now > sl.expire {
		c.dropLocked(s, h, sl)
		s.evictedTTL++
		s.misses++
		s.publishLocked()
		s.mu.Unlock()
		c.evictTTLC.Inc()
		c.missesC.Inc()
		return nil, false
	}
	kb := s.arena[sl.off : sl.off+int64(sl.klen)]
	if !bytes.Equal(kb, key) {
		// 64-bit hash collision: the slot belongs to a different key.
		// Served as a miss — the caller refills and the colliding key is
		// overwritten (last-writer-wins), never answered wrongly.
		s.misses++
		s.mu.Unlock()
		c.missesC.Inc()
		return nil, false
	}
	s.tick++
	sl.tick = s.tick
	if sl.hits != ^uint32(0) {
		sl.hits++
	}
	s.index[h] = sl
	v := s.arena[sl.off+int64(sl.klen) : sl.off+sl.size()]
	s.hits++
	s.mu.Unlock()
	c.hitsC.Inc()
	return v, true
}

// EntryInfo describes a resident entry's freshness and popularity, for the
// refresh-ahead scanner. It is a pure read: no hit/miss accounting, no LRU
// tick bump, no expired-entry reaping.
type EntryInfo struct {
	Stored int64  // unix nanos when the entry was written
	Expire int64  // unix nanos; 0 = no expiry
	Hits   uint32 // reads since stored (halved on overwrite)
}

// Info reports the freshness metadata of the entry under key. The second
// result is false when the key is absent or already expired.
func (c *Cache) Info(key []byte) (EntryInfo, bool) {
	h := hashBytes(key)
	s := &c.shards[h&c.mask]
	now := c.clk.Now().UnixNano()
	s.mu.Lock()
	defer s.mu.Unlock()
	sl, ok := s.index[h]
	if !ok || (sl.expire > 0 && now > sl.expire) {
		return EntryInfo{}, false
	}
	if !bytes.Equal(s.arena[sl.off:sl.off+int64(sl.klen)], key) {
		return EntryInfo{}, false
	}
	return EntryInfo{Stored: sl.stored, Expire: sl.expire, Hits: sl.hits}, true
}

// Set stores value under key with the given ttl (zero selects the
// cache's DefaultTTL; negative stores a non-expiring entry). The key and
// value bytes are copied into the shard arena, so the caller keeps
// ownership of both. Values larger than a shard's whole budget are not
// stored (and evict a previous entry under the same key, so staleness
// never hides behind an oversized update).
func (c *Cache) Set(key, value []byte, ttl time.Duration) {
	if ttl == 0 {
		ttl = c.defTTL
	}
	now := c.clk.Now()
	var expire int64
	if ttl > 0 {
		expire = now.Add(ttl).UnixNano()
	}
	c.put(key, value, now.UnixNano(), expire)
}

// put is the shared store path behind Set and snapshot restore: stored and
// expire are absolute timestamps (expire 0 = no expiry).
func (c *Cache) put(key, value []byte, stored, expire int64) {
	h := hashBytes(key)
	s := &c.shards[h&c.mask]
	size := int64(len(key)) + int64(len(value))

	s.mu.Lock()
	// An overwrite of a hot entry (the refresh-ahead swap) keeps half the
	// accumulated hit count, so popularity survives the refresh with decay
	// instead of resetting to cold every cycle.
	var carried uint32
	if old, ok := s.index[h]; ok {
		// Overwrite (same key or 64-bit collision): the old bytes die but
		// the index entry survives until replaced below.
		carried = old.hits / 2
		s.live -= old.size()
		s.dead += old.size()
		c.residentG.Add(-old.size())
		c.deadG.Add(old.size())
		if size > c.maxShard {
			delete(s.index, h)
			c.entriesG.Add(-1)
		}
	}
	if size <= c.maxShard {
		c.evictForLocked(s, size)
		isNew := true
		if _, ok := s.index[h]; ok {
			isNew = false
		}
		off := int64(len(s.arena))
		s.arena = append(s.arena, key...)
		s.arena = append(s.arena, value...)
		s.tick++
		s.index[h] = slot{
			off:    off,
			klen:   uint32(len(key)),
			vlen:   uint32(len(value)),
			expire: expire,
			stored: stored,
			tick:   s.tick,
			hits:   carried,
		}
		s.live += size
		s.sets++
		c.residentG.Add(size)
		if isNew {
			c.entriesG.Add(1)
		}
	}
	c.maybeCompactLocked(s)
	s.publishLocked()
	s.mu.Unlock()
	c.setsC.Inc()
}

// Delete removes key if present.
func (c *Cache) Delete(key []byte) {
	h := hashBytes(key)
	s := &c.shards[h&c.mask]
	s.mu.Lock()
	if sl, ok := s.index[h]; ok {
		c.dropLocked(s, h, sl)
		c.maybeCompactLocked(s)
		s.publishLocked()
	}
	s.mu.Unlock()
}

// dropLocked removes an index entry and accounts its bytes dead. Caller
// holds s.mu.
func (c *Cache) dropLocked(s *shard, h uint64, sl slot) {
	delete(s.index, h)
	s.live -= sl.size()
	s.dead += sl.size()
	s.tel.evictions.Inc()
	c.residentG.Add(-sl.size())
	c.deadG.Add(sl.size())
	c.entriesG.Add(-1)
}

// evictForLocked frees room for an incoming entry of the given size:
// expired entries first, then approximate LRU (stalest of a small sample)
// until live+size fits the shard budget.
func (c *Cache) evictForLocked(s *shard, size int64) {
	if s.live+size <= c.maxShard {
		return
	}
	now := c.clk.Now().UnixNano()
	// Pass 1: expired entries anywhere in the shard.
	for h, sl := range s.index {
		if sl.expire > 0 && now > sl.expire {
			c.dropLocked(s, h, sl)
			s.evictedTTL++
			c.evictTTLC.Inc()
			if s.live+size <= c.maxShard {
				return
			}
		}
	}
	// Pass 2: approximate LRU. Map iteration starts at a random position,
	// so each round samples a different neighborhood.
	for s.live+size > c.maxShard && len(s.index) > 0 {
		var victim uint64
		var vslot slot
		oldest := uint64(0)
		n := 0
		for h, sl := range s.index {
			if n == 0 || sl.tick < oldest {
				victim, vslot, oldest = h, sl, sl.tick
			}
			n++
			if n >= evictSample {
				break
			}
		}
		c.dropLocked(s, victim, vslot)
		s.evictedLRU++
		c.evictLRUC.Inc()
	}
}

// maybeCompactLocked rewrites the shard arena when dead bytes cross the
// configured fraction: live entries are copied into a fresh arena in index
// order and the old arena is released to the garbage collector (readers
// holding blobs from it keep it alive until they drop them).
func (c *Cache) maybeCompactLocked(s *shard) {
	arenaLen := int64(len(s.arena))
	if arenaLen == 0 || s.dead <= 0 {
		return
	}
	if float64(s.dead)/float64(arenaLen) < c.compactAt {
		return
	}
	start := c.clk.Now()
	fresh := make([]byte, 0, s.live)
	for h, sl := range s.index {
		off := int64(len(fresh))
		fresh = append(fresh, s.arena[sl.off:sl.off+sl.size()]...)
		sl.off = off
		s.index[h] = sl
	}
	s.arena = fresh
	c.deadG.Add(-s.dead)
	s.dead = 0
	s.compactions++
	s.tel.compactions.Inc()
	c.compactC.Inc()
	c.compactHist.Observe(c.clk.Since(start))
}

// publishLocked refreshes the shard's occupancy gauges. Caller holds
// s.mu; two atomic stores, no allocation.
func (s *shard) publishLocked() {
	s.tel.entries.Set(int64(len(s.index)))
	s.tel.liveBytes.Set(s.live)
}

// Stats is a point-in-time aggregate of the cache's counters.
type Stats struct {
	Entries     int64
	LiveBytes   int64
	DeadBytes   int64
	ArenaBytes  int64
	Hits        int64
	Misses      int64
	Sets        int64
	EvictedTTL  int64
	EvictedLRU  int64
	Compactions int64
}

// HitRatio is hits / (hits + misses), 0 when no reads happened.
func (st Stats) HitRatio() float64 {
	total := st.Hits + st.Misses
	if total == 0 {
		return 0
	}
	return float64(st.Hits) / float64(total)
}

// add merges one shard's counters. Caller holds the shard's mutex.
func (st *Stats) add(s *shard) {
	st.Entries += int64(len(s.index))
	st.LiveBytes += s.live
	st.DeadBytes += s.dead
	st.ArenaBytes += int64(len(s.arena))
	st.Hits += s.hits
	st.Misses += s.misses
	st.Sets += s.sets
	st.EvictedTTL += s.evictedTTL
	st.EvictedLRU += s.evictedLRU
	st.Compactions += s.compactions
}

// Stats aggregates all shards.
func (c *Cache) Stats() Stats {
	var st Stats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.add(s)
		s.mu.Unlock()
	}
	return st
}

// ShardStats returns each shard's counters in shard order, for the
// occupancy views the selfmetrics provider and debug endpoints serve.
func (c *Cache) ShardStats() []Stats {
	out := make([]Stats, len(c.shards))
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		out[i].add(s)
		s.mu.Unlock()
	}
	return out
}

// Shards returns the shard count.
func (c *Cache) Shards() int { return len(c.shards) }

// View is one live entry yielded by Range. Key and Value alias the shard
// arena: they are read-only but stay valid indefinitely (arenas are never
// mutated in place).
type View struct {
	Key    []byte
	Value  []byte
	Stored int64 // unix nanos when the entry was written
	Expire int64 // unix nanos; 0 = no expiry
	Hits   uint32
}

// Range calls fn for every live, unexpired entry until fn returns false.
// Entries are gathered one shard at a time under that shard's lock, and fn
// runs after the lock is released, so fn may take as long as it likes (and
// may call back into the cache) without stalling readers. The snapshot it
// sees is consistent per shard, not across shards — exactly the guarantee
// a periodic snapshotter needs.
func (c *Cache) Range(fn func(View) bool) {
	var views []View
	now := c.clk.Now().UnixNano()
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		views = views[:0]
		if cap(views) < len(s.index) {
			views = make([]View, 0, len(s.index))
		}
		for _, sl := range s.index {
			if sl.expire > 0 && now > sl.expire {
				continue
			}
			views = append(views, View{
				Key:    s.arena[sl.off : sl.off+int64(sl.klen) : sl.off+int64(sl.klen)],
				Value:  s.arena[sl.off+int64(sl.klen) : sl.off+sl.size() : sl.off+sl.size()],
				Stored: sl.stored,
				Expire: sl.expire,
				Hits:   sl.hits,
			})
		}
		s.mu.Unlock()
		for _, v := range views {
			if !fn(v) {
				return
			}
		}
	}
}

// Clear drops every entry and releases every arena — the cold-start path
// taken when a snapshot restore finds corruption. Counters (hits, misses,
// sets) survive; occupancy gauges go to zero.
func (c *Cache) Clear() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		c.entriesG.Add(-int64(len(s.index)))
		c.residentG.Add(-s.live)
		c.deadG.Add(-s.dead)
		s.index = make(map[uint64]slot)
		s.arena = nil
		s.live = 0
		s.dead = 0
		s.publishLocked()
		s.mu.Unlock()
	}
}
