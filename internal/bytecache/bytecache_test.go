package bytecache

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"infogram/internal/clock"
	"infogram/internal/telemetry"
)

func TestGetSetRoundTrip(t *testing.T) {
	c := New(Options{Shards: 4, MaxBytes: 1 << 20})
	if _, ok := c.Get([]byte("absent")); ok {
		t.Fatal("Get on empty cache reported a hit")
	}
	c.Set([]byte("k1"), []byte("value-one"), 0)
	c.Set([]byte("k2"), []byte("value-two"), 0)
	v, ok := c.Get([]byte("k1"))
	if !ok || string(v) != "value-one" {
		t.Fatalf("Get(k1) = %q, %v; want value-one, true", v, ok)
	}
	v, ok = c.Get([]byte("k2"))
	if !ok || string(v) != "value-two" {
		t.Fatalf("Get(k2) = %q, %v; want value-two, true", v, ok)
	}
	st := c.Stats()
	if st.Entries != 2 || st.Hits != 2 || st.Misses != 1 || st.Sets != 2 {
		t.Fatalf("stats = %+v; want 2 entries, 2 hits, 1 miss, 2 sets", st)
	}
	if got := st.HitRatio(); got < 0.66 || got > 0.67 {
		t.Fatalf("HitRatio() = %v; want 2/3", got)
	}
}

func TestOverwriteMarksOldBytesDead(t *testing.T) {
	c := New(Options{Shards: 1, MaxBytes: 1 << 20, CompactFraction: 0.99})
	c.Set([]byte("k"), []byte("first"), 0)
	c.Set([]byte("k"), []byte("second"), 0)
	v, ok := c.Get([]byte("k"))
	if !ok || string(v) != "second" {
		t.Fatalf("Get after overwrite = %q, %v; want second", v, ok)
	}
	st := c.Stats()
	if st.Entries != 1 {
		t.Fatalf("Entries = %d; want 1", st.Entries)
	}
	if st.DeadBytes != int64(len("k")+len("first")) {
		t.Fatalf("DeadBytes = %d; want %d", st.DeadBytes, len("k")+len("first"))
	}
}

func TestTTLExpiry(t *testing.T) {
	clk := clock.NewFake(time.Unix(1000, 0))
	c := New(Options{Shards: 1, MaxBytes: 1 << 20, Clock: clk})
	c.Set([]byte("short"), []byte("v"), 50*time.Millisecond)
	c.Set([]byte("forever"), []byte("v"), -1)
	if _, ok := c.Get([]byte("short")); !ok {
		t.Fatal("fresh entry missing")
	}
	clk.Advance(100 * time.Millisecond)
	if _, ok := c.Get([]byte("short")); ok {
		t.Fatal("expired entry still served")
	}
	if _, ok := c.Get([]byte("forever")); !ok {
		t.Fatal("non-expiring entry dropped")
	}
	st := c.Stats()
	if st.EvictedTTL != 1 {
		t.Fatalf("EvictedTTL = %d; want 1", st.EvictedTTL)
	}
	if st.Entries != 1 {
		t.Fatalf("Entries = %d; want 1", st.Entries)
	}
}

func TestDefaultTTLApplied(t *testing.T) {
	clk := clock.NewFake(time.Unix(1000, 0))
	c := New(Options{Shards: 1, MaxBytes: 1 << 20, DefaultTTL: time.Second, Clock: clk})
	c.Set([]byte("k"), []byte("v"), 0)
	clk.Advance(2 * time.Second)
	if _, ok := c.Get([]byte("k")); ok {
		t.Fatal("entry outlived DefaultTTL")
	}
}

func TestDelete(t *testing.T) {
	c := New(Options{Shards: 2, MaxBytes: 1 << 20})
	c.Set([]byte("k"), []byte("v"), 0)
	c.Delete([]byte("k"))
	if _, ok := c.Get([]byte("k")); ok {
		t.Fatal("deleted entry still present")
	}
	c.Delete([]byte("never-existed")) // must not panic
}

func TestLRUEvictionUnderBudget(t *testing.T) {
	clk := clock.NewFake(time.Unix(1000, 0))
	// One shard with room for roughly 10 of the ~100-byte entries.
	c := New(Options{Shards: 1, MaxBytes: 1024, Clock: clk})
	val := bytes.Repeat([]byte("x"), 90)
	for i := 0; i < 50; i++ {
		c.Set(fmt.Appendf(nil, "key-%03d", i), val, -1)
	}
	st := c.Stats()
	if st.LiveBytes > 1024 {
		t.Fatalf("LiveBytes = %d exceeds budget 1024", st.LiveBytes)
	}
	if st.Entries == 0 {
		t.Fatal("eviction emptied the cache entirely")
	}
	if st.EvictedLRU == 0 {
		t.Fatal("no LRU evictions recorded despite overflow")
	}
	// The newest entry must have survived.
	if _, ok := c.Get([]byte("key-049")); !ok {
		t.Fatal("most recent entry was evicted")
	}
}

func TestEvictionPrefersExpired(t *testing.T) {
	clk := clock.NewFake(time.Unix(1000, 0))
	c := New(Options{Shards: 1, MaxBytes: 1024, Clock: clk})
	val := bytes.Repeat([]byte("x"), 90)
	for i := 0; i < 5; i++ {
		c.Set(fmt.Appendf(nil, "exp-%d", i), val, 10*time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		c.Set(fmt.Appendf(nil, "live-%d", i), val, -1)
	}
	clk.Advance(time.Second) // all exp-* now stale
	// Push the shard over budget; expired entries must go first.
	c.Set([]byte("new"), val, -1)
	st := c.Stats()
	if st.EvictedTTL == 0 {
		t.Fatalf("expected TTL evictions before LRU; stats %+v", st)
	}
	for i := 0; i < 5; i++ {
		if _, ok := c.Get(fmt.Appendf(nil, "live-%d", i)); !ok {
			t.Fatalf("live-%d evicted while expired entries existed", i)
		}
	}
}

func TestCompactionReclaimsDeadBytes(t *testing.T) {
	c := New(Options{Shards: 1, MaxBytes: 1 << 20, CompactFraction: 0.5})
	val := bytes.Repeat([]byte("v"), 100)
	for i := 0; i < 10; i++ {
		c.Set(fmt.Appendf(nil, "k%d", i), val, -1)
	}
	// Hold an alias into the current arena across the compaction.
	alias, ok := c.Get([]byte("k0"))
	if !ok {
		t.Fatal("k0 missing")
	}
	before := append([]byte(nil), alias...)
	// Keep overwriting until dead bytes cross 50% and trigger a rewrite.
	for i := 0; i < 100 && c.Stats().Compactions == 0; i++ {
		c.Set(fmt.Appendf(nil, "k%d", 1+i%9), val, -1)
	}
	st := c.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction despite repeated overwrites; stats %+v", st)
	}
	if st.DeadBytes != 0 {
		t.Fatalf("DeadBytes = %d after compaction; want 0", st.DeadBytes)
	}
	if st.ArenaBytes != st.LiveBytes {
		t.Fatalf("ArenaBytes = %d, LiveBytes = %d; want equal after compaction", st.ArenaBytes, st.LiveBytes)
	}
	// The alias taken before compaction still reads the original bytes.
	if !bytes.Equal(alias, before) {
		t.Fatal("pre-compaction alias mutated by compaction")
	}
	// And all entries are still readable post-rewrite.
	for i := 0; i < 10; i++ {
		v, ok := c.Get(fmt.Appendf(nil, "k%d", i))
		if !ok || !bytes.Equal(v, val) {
			t.Fatalf("k%d unreadable after compaction", i)
		}
	}
}

func TestOversizedValueRejectedAndInvalidatesOld(t *testing.T) {
	c := New(Options{Shards: 1, MaxBytes: 256})
	c.Set([]byte("k"), []byte("small"), 0)
	big := bytes.Repeat([]byte("b"), 1024)
	c.Set([]byte("k"), big, 0)
	if _, ok := c.Get([]byte("k")); ok {
		t.Fatal("oversized update left the stale small value readable")
	}
	st := c.Stats()
	if st.Entries != 0 {
		t.Fatalf("Entries = %d; want 0", st.Entries)
	}
}

// TestHashCollisionServedAsMiss plants two keys with the same 64-bit hash
// by seizing the index directly, then verifies the colliding reader gets a
// miss (never the other key's value).
func TestHashCollisionServedAsMiss(t *testing.T) {
	c := New(Options{Shards: 1, MaxBytes: 1 << 20})
	c.Set([]byte("stored"), []byte("stored-value"), 0)
	h := hashBytes([]byte("stored"))
	s := &c.shards[0]
	// Re-key the slot under the hash of a different key, simulating a
	// collision between "stored" and "other".
	s.mu.Lock()
	sl := s.index[h]
	delete(s.index, h)
	s.index[hashBytes([]byte("other"))] = sl
	s.mu.Unlock()
	if v, ok := c.Get([]byte("other")); ok {
		t.Fatalf("collision served wrong value %q", v)
	}
}

func TestShardStatsAndShards(t *testing.T) {
	c := New(Options{Shards: 3, MaxBytes: 1 << 20}) // rounds up to 4
	if c.Shards() != 4 {
		t.Fatalf("Shards() = %d; want 4 (power of two)", c.Shards())
	}
	for i := 0; i < 100; i++ {
		c.Set(fmt.Appendf(nil, "key-%d", i), []byte("v"), 0)
	}
	per := c.ShardStats()
	if len(per) != 4 {
		t.Fatalf("ShardStats() returned %d shards; want 4", len(per))
	}
	var total int64
	populated := 0
	for _, st := range per {
		total += st.Entries
		if st.Entries > 0 {
			populated++
		}
	}
	if total != 100 {
		t.Fatalf("per-shard entries sum = %d; want 100", total)
	}
	if populated < 2 {
		t.Fatalf("only %d shards populated; hash distribution broken", populated)
	}
}

func TestTelemetryCountersAndGauges(t *testing.T) {
	reg := telemetry.NewRegistry()
	// One shard, compaction held off so the delete's dead bytes stay
	// visible on the gauge.
	c := New(Options{Shards: 1, MaxBytes: 1 << 20, CompactFraction: 0.9})
	c.SetTelemetry(reg)
	c.Set([]byte("keep"), []byte("v"), 0)
	c.Set([]byte("k"), []byte("v"), 0)
	c.Get([]byte("k"))
	c.Get([]byte("nope"))
	c.Delete([]byte("k"))

	want := map[string]int64{
		"infogram_bytecache_hits_total":     1,
		"infogram_bytecache_misses_total":   1,
		"infogram_bytecache_sets_total":     2,
		"infogram_bytecache_resident_bytes": int64(len("keep") + len("v")),
		"infogram_bytecache_entries":        1,
	}
	got := map[string]int64{}
	for _, p := range reg.Snapshot() {
		if _, interested := want[p.Name]; interested && len(p.Labels) == 0 {
			got[p.Name] = p.Value
		}
	}
	for name, wantV := range want {
		if got[name] != wantV {
			t.Errorf("%s = %d; want %d", name, got[name], wantV)
		}
	}
	// Dead bytes from the delete must be visible until compaction.
	var dead int64 = -1
	for _, p := range reg.Snapshot() {
		if p.Name == "infogram_bytecache_dead_bytes" {
			dead = p.Value
		}
	}
	if dead <= 0 {
		t.Errorf("infogram_bytecache_dead_bytes = %d; want > 0 after delete", dead)
	}
}

func TestPerShardTelemetrySeries(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := New(Options{Shards: 2, MaxBytes: 1 << 20})
	c.SetTelemetry(reg)
	for i := 0; i < 32; i++ {
		c.Set(fmt.Appendf(nil, "key-%d", i), []byte("v"), 0)
	}
	var sum int64
	series := 0
	for _, p := range reg.Snapshot() {
		if p.Name == "infogram_bytecache_shard_entries" {
			series++
			sum += p.Value
		}
	}
	if series != 2 {
		t.Fatalf("shard entry series = %d; want 2", series)
	}
	if sum != 32 {
		t.Fatalf("per-shard entry gauges sum = %d; want 32", sum)
	}
}

// TestGetAllocationFree pins the hit path at zero heap allocations,
// telemetry armed — the property the whole arena design exists for.
func TestGetAllocationFree(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := New(Options{Shards: 8, MaxBytes: 1 << 20})
	c.SetTelemetry(reg)
	keys := make([][]byte, 64)
	for i := range keys {
		keys[i] = fmt.Appendf(nil, "alloc-key-%04d", i)
		c.Set(keys[i], bytes.Repeat([]byte("v"), 64), 0)
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		k := keys[i&63]
		i++
		if _, ok := c.Get(k); !ok {
			t.Fatal("unexpected miss")
		}
	})
	if allocs != 0 {
		t.Fatalf("Get allocates %.1f objects per hit; want 0", allocs)
	}
}

// TestMissAllocationFree pins the miss path too: the fill path pays for
// rendering anyway, but the lookup itself must stay free.
func TestMissAllocationFree(t *testing.T) {
	c := New(Options{Shards: 8, MaxBytes: 1 << 20})
	key := []byte("never-stored")
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := c.Get(key); ok {
			t.Fatal("unexpected hit")
		}
	})
	if allocs != 0 {
		t.Fatalf("miss allocates %.1f objects; want 0", allocs)
	}
}

func TestConcurrentAccessRace(t *testing.T) {
	c := New(Options{Shards: 4, MaxBytes: 64 << 10})
	reg := telemetry.NewRegistry()
	c.SetTelemetry(reg)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(seed int) {
			defer func() { done <- struct{}{} }()
			val := bytes.Repeat([]byte{byte('a' + seed)}, 128)
			for i := 0; i < 2000; i++ {
				k := fmt.Appendf(nil, "w%d-key-%d", seed, i%97)
				switch i % 5 {
				case 0:
					c.Set(k, val, time.Millisecond)
				case 4:
					c.Delete(k)
				default:
					if v, ok := c.Get(k); ok {
						if len(v) != 128 || v[0] != byte('a'+seed) {
							t.Errorf("worker %d read foreign bytes", seed)
							return
						}
					}
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	st := c.Stats()
	if st.LiveBytes < 0 || st.DeadBytes < 0 {
		t.Fatalf("negative byte accounting: %+v", st)
	}
}
