package bytecache

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"infogram/internal/clock"
	"infogram/internal/journal"
	"infogram/internal/telemetry"
)

// Cache snapshots reuse the journal's CRC frame format so a snapshot file
// gets the same torn-tail and bit-flip story the write-ahead journal has:
// one header frame carrying the snapshot metadata, then one frame per live
// entry. A truncated tail (process killed mid-snapshot of the .tmp file
// never happens — the rename is atomic — but a torn copy or filesystem
// loss can still produce one) restores the intact prefix; a CRC mismatch
// anywhere discards everything and the cache starts cold. Restore never
// panics and never resurrects an entry past its original deadline.

const (
	// snapshotMagic opens the header frame.
	snapshotMagic = "IGBC"
	// snapshotVersion is bumped when the entry layout changes; a mismatch
	// reads as a cold start, never a misparse.
	snapshotVersion = 1
	// snapshotVersionGzip marks the compressed layout: the header frame is
	// written plain (so Accept hooks never pay a decompression), and every
	// entry frame that follows travels through one gzip stream. Restore
	// handles both versions transparently, so flipping compression on or
	// off between runs still restores the previous run's snapshot.
	snapshotVersionGzip = 2
	// snapshotHeaderLen is magic + version + generation + digest + savedAt.
	snapshotHeaderLen = 4 + 1 + 8 + 8 + 8
	// entryHeaderLen is klen + vlen + stored + expire before the bytes.
	entryHeaderLen = 4 + 4 + 8 + 8
	// maxSnapshotPayload bounds one frame: one entry's header, key, and
	// value. Values are rendered response bodies, far below this.
	maxSnapshotPayload = 64 << 20
)

// ErrSnapshotRejected reports a structurally valid snapshot whose metadata
// the caller's Accept hook refused — a different provider population or
// membership digest. The cache stays cold; nothing was restored.
var ErrSnapshotRejected = errors.New("bytecache: snapshot rejected by metadata")

// SnapshotMeta travels in the snapshot header frame and gates restore.
type SnapshotMeta struct {
	// Generation is the cache owner's invalidation counter at snapshot
	// time (the respcache registry generation, the GIIS membership
	// generation). Restore re-stamps keys from this value to the current
	// one via RestoreOptions.MapKey.
	Generation uint64
	// Digest fingerprints whatever the generation counter ranges over
	// (provider population and TTLs, member set) so a restore into a
	// differently-shaped world is refused instead of trusted.
	Digest uint64
	// SavedAt is the snapshot wall-clock time in unix nanos.
	SavedAt int64
}

// RestoreStats reports what a restore did.
type RestoreStats struct {
	Restored       int  // entries brought back live
	DroppedExpired int  // entries past their deadline at restore time
	DroppedKey     int  // entries refused by MapKey (orphaned generation)
	Torn           bool // snapshot ended mid-frame; the intact prefix was kept
}

// RestoreOptions customizes RestoreSnapshot.
type RestoreOptions struct {
	// Accept inspects the header before any entry is read; returning false
	// aborts with ErrSnapshotRejected. Nil accepts everything.
	Accept func(meta SnapshotMeta) bool
	// MapKey translates a snapshotted key into a live one — typically
	// re-stamping an embedded generation counter — or drops it by
	// returning false. The slice passed in is scratch: it may be mutated
	// in place and returned, and is copied on store. Nil keeps keys as-is.
	MapKey func(key []byte, meta SnapshotMeta) ([]byte, bool)
}

// WriteSnapshot streams every live entry to w in the CRC-framed snapshot
// format and returns the entry count. Entries are gathered shard by shard
// under the shard lock but written outside it, so a slow disk never stalls
// the read path.
func (c *Cache) WriteSnapshot(w io.Writer, meta SnapshotMeta) (int, error) {
	return c.writeSnapshot(w, meta, false)
}

// WriteSnapshotGzip is WriteSnapshot in the version-2 layout: the entry
// frames are gzip-compressed behind the plain header frame. Rendered
// response bodies are highly repetitive LDIF, so this typically shrinks
// the file severalfold at the cost of CPU during the snapshot.
func (c *Cache) WriteSnapshotGzip(w io.Writer, meta SnapshotMeta) (int, error) {
	return c.writeSnapshot(w, meta, true)
}

func (c *Cache) writeSnapshot(w io.Writer, meta SnapshotMeta, compress bool) (int, error) {
	bw := bufio.NewWriterSize(w, 256<<10)

	version := byte(snapshotVersion)
	if compress {
		version = snapshotVersionGzip
	}
	var frame []byte
	frame = journal.BeginFrame(frame[:0])
	frame = append(frame, snapshotMagic...)
	frame = append(frame, version)
	frame = binary.LittleEndian.AppendUint64(frame, meta.Generation)
	frame = binary.LittleEndian.AppendUint64(frame, meta.Digest)
	frame = binary.LittleEndian.AppendUint64(frame, uint64(meta.SavedAt))
	journal.FinishFrame(frame)
	if _, err := bw.Write(frame); err != nil {
		return 0, fmt.Errorf("bytecache: snapshot: %w", err)
	}

	// Entry frames go through the gzip stream when compressing; framing
	// inside the stream keeps the per-entry CRC story identical, and a
	// truncated stream still surfaces as a torn tail on restore.
	var out io.Writer = bw
	var zw *gzip.Writer
	if compress {
		zw = gzip.NewWriter(bw)
		out = zw
	}

	entries := 0
	var werr error
	c.Range(func(v View) bool {
		frame = journal.BeginFrame(frame[:0])
		frame = binary.LittleEndian.AppendUint32(frame, uint32(len(v.Key)))
		frame = binary.LittleEndian.AppendUint32(frame, uint32(len(v.Value)))
		frame = binary.LittleEndian.AppendUint64(frame, uint64(v.Stored))
		frame = binary.LittleEndian.AppendUint64(frame, uint64(v.Expire))
		frame = append(frame, v.Key...)
		frame = append(frame, v.Value...)
		journal.FinishFrame(frame)
		if _, err := out.Write(frame); err != nil {
			werr = err
			return false
		}
		entries++
		return true
	})
	if werr == nil && zw != nil {
		werr = zw.Close()
	}
	if werr == nil {
		werr = bw.Flush()
	}
	if werr != nil {
		return entries, fmt.Errorf("bytecache: snapshot: %w", werr)
	}
	return entries, nil
}

// RestoreSnapshot reads a snapshot from r into the cache. Entries expired
// by now are dropped; a torn tail keeps the intact prefix; any corruption
// (bad CRC, malformed entry, wrong magic or version) clears the cache and
// returns an error — the caller continues cold. Never panics on arbitrary
// input.
func (c *Cache) RestoreSnapshot(r io.Reader, opts RestoreOptions) (RestoreStats, SnapshotMeta, error) {
	var st RestoreStats
	var meta SnapshotMeta

	br := bufio.NewReaderSize(r, 256<<10)
	fr := journal.NewFrameReader(br, maxSnapshotPayload)
	header, err := fr.Next()
	if err != nil {
		return st, meta, fmt.Errorf("bytecache: restore header: %w", err)
	}
	if len(header) != snapshotHeaderLen || string(header[:4]) != snapshotMagic {
		return st, meta, fmt.Errorf("%w: not a cache snapshot", journal.ErrFrameCorrupt)
	}
	if header[4] != snapshotVersion && header[4] != snapshotVersionGzip {
		return st, meta, fmt.Errorf("bytecache: restore: snapshot version %d not supported", header[4])
	}
	meta.Generation = binary.LittleEndian.Uint64(header[5:])
	meta.Digest = binary.LittleEndian.Uint64(header[13:])
	meta.SavedAt = int64(binary.LittleEndian.Uint64(header[21:]))
	if opts.Accept != nil && !opts.Accept(meta) {
		return st, meta, ErrSnapshotRejected
	}
	if header[4] == snapshotVersionGzip {
		// The frame reader consumed exactly the header frame's bytes from
		// br, so the gzip stream starts at br's current position. A file
		// truncated right after the header reads as a torn (empty) tail.
		zr, err := gzip.NewReader(br)
		if err != nil {
			st.Torn = true
			return st, meta, nil
		}
		fr = journal.NewFrameReader(zr, maxSnapshotPayload)
	}

	now := c.clk.Now().UnixNano()
	for {
		payload, err := fr.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return st, meta, nil
			}
			if errors.Is(err, journal.ErrTornFrame) {
				st.Torn = true
				return st, meta, nil
			}
			// CRC mismatch or oversize length: no guarantee about anything
			// already restored either, so start over cold.
			c.Clear()
			return RestoreStats{}, meta, fmt.Errorf("bytecache: restore: %w", err)
		}
		if len(payload) < entryHeaderLen {
			c.Clear()
			return RestoreStats{}, meta, fmt.Errorf("%w: entry frame %d bytes", journal.ErrFrameCorrupt, len(payload))
		}
		klen := binary.LittleEndian.Uint32(payload)
		vlen := binary.LittleEndian.Uint32(payload[4:])
		stored := int64(binary.LittleEndian.Uint64(payload[8:]))
		expire := int64(binary.LittleEndian.Uint64(payload[16:]))
		if int64(klen)+int64(vlen)+entryHeaderLen != int64(len(payload)) {
			c.Clear()
			return RestoreStats{}, meta, fmt.Errorf("%w: entry lengths disagree with frame", journal.ErrFrameCorrupt)
		}
		key := payload[entryHeaderLen : entryHeaderLen+klen]
		value := payload[entryHeaderLen+klen:]
		if expire > 0 && now >= expire {
			st.DroppedExpired++
			continue
		}
		if opts.MapKey != nil {
			mapped, ok := opts.MapKey(key, meta)
			if !ok {
				st.DroppedKey++
				continue
			}
			key = mapped
		}
		c.put(key, value, stored, expire)
		st.Restored++
	}
}

// GenKeyMapper returns a MapKey hook for key layouts that embed a
// little-endian uint64 generation counter at a fixed offset: keys stamped
// with the snapshot's generation are re-stamped to current, anything else
// (orphans of an older generation, short keys) is dropped.
func GenKeyMapper(offset int, current uint64) func(key []byte, meta SnapshotMeta) ([]byte, bool) {
	return func(key []byte, meta SnapshotMeta) ([]byte, bool) {
		if len(key) < offset+8 {
			return nil, false
		}
		if binary.LittleEndian.Uint64(key[offset:]) != meta.Generation {
			return nil, false
		}
		binary.LittleEndian.PutUint64(key[offset:], current)
		return key, true
	}
}

// PersistOptions configures a Persister.
type PersistOptions struct {
	// Path is the snapshot file. Writes go to Path+".tmp" and rename over
	// Path, so a crash mid-snapshot leaves the previous snapshot intact.
	Path string
	// Interval between background snapshots; 0 snapshots only on Close.
	Interval time.Duration
	// Name labels this persister's telemetry series (e.g. "resp", "gris").
	Name string
	// Meta supplies the current metadata, called at every snapshot and at
	// restore (where it gates acceptance). Nil persists zero metadata and
	// accepts any snapshot.
	Meta func() SnapshotMeta
	// MapKey is passed through to RestoreSnapshot, built per restore so it
	// can close over the current generation. Nil keeps keys as-is.
	MapKey func(snap, current SnapshotMeta) func(key []byte, meta SnapshotMeta) ([]byte, bool)
	// Compress writes snapshots in the gzip layout. Restore reads either
	// layout regardless, so the flag can change between runs.
	Compress bool
	// Clock defaults to the system clock.
	Clock clock.Clock
}

// Persister owns the snapshot lifecycle of one cache: restore at boot,
// periodic background snapshots, a final snapshot on Close.
type Persister struct {
	c    *Cache
	opts PersistOptions
	clk  clock.Clock

	mu   sync.Mutex // serializes Snapshot against itself and Close
	stop chan struct{}
	done chan struct{}

	snaps     *telemetry.Counter
	snapErrs  *telemetry.Counter
	snapDur   *telemetry.Histogram
	snapSize  *telemetry.Gauge
	restored  *telemetry.Gauge
	dropped   *telemetry.Counter
	coldStart *telemetry.Counter
}

// NewPersister builds a Persister for c. Call Restore once before serving,
// Start to begin the background loop, Close to stop it and write the final
// snapshot.
func NewPersister(c *Cache, opts PersistOptions) *Persister {
	clk := opts.Clock
	if clk == nil {
		clk = clock.System
	}
	return &Persister{c: c, opts: opts, clk: clk}
}

// SetTelemetry binds the persister's metrics, labeled by the configured
// name so several persisters (GRIS and GIIS in one process) stay distinct.
func (p *Persister) SetTelemetry(reg *telemetry.Registry) {
	if p == nil || reg == nil {
		return
	}
	lb := telemetry.Label{Key: "cache", Value: p.opts.Name}
	p.snaps = reg.Counter("infogram_cache_snapshot_total", "cache snapshots written", lb)
	p.snapErrs = reg.Counter("infogram_cache_snapshot_errors_total", "cache snapshots that failed", lb)
	p.snapDur = reg.Histogram("infogram_cache_snapshot_duration_seconds", "wall-clock duration of one cache snapshot", lb)
	p.snapSize = reg.Gauge("infogram_cache_snapshot_entries", "entries in the newest cache snapshot", lb)
	p.restored = reg.Gauge("infogram_cache_restored_entries", "entries brought back by the boot-time restore", lb)
	p.dropped = reg.Counter("infogram_cache_restore_dropped_total", "snapshot entries not restored (expired or orphaned)", lb)
	p.coldStart = reg.Counter("infogram_cache_restore_cold_total", "boot-time restores that fell back to a cold start", lb)
}

// Restore loads the snapshot at Path, if any. Every failure mode — no
// file, rejected metadata, torn tail, corruption — degrades to a cold (or
// partially warm) start and is reported in the stats; the returned error
// is informational and never fatal to the caller's boot.
func (p *Persister) Restore() (RestoreStats, error) {
	if p == nil {
		return RestoreStats{}, nil
	}
	f, err := os.Open(p.opts.Path)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			p.coldStart.Inc()
		}
		return RestoreStats{}, nil // no snapshot: ordinary cold boot
	}
	defer f.Close()

	var current SnapshotMeta
	if p.opts.Meta != nil {
		current = p.opts.Meta()
	}
	ropts := RestoreOptions{
		Accept: func(snap SnapshotMeta) bool { return snap.Digest == current.Digest },
	}
	if p.opts.MapKey != nil {
		// The mapper is built per restore so it can re-stamp from the
		// snapshot's generation to the current one.
		var mk func([]byte, SnapshotMeta) ([]byte, bool)
		ropts.MapKey = func(key []byte, meta SnapshotMeta) ([]byte, bool) {
			if mk == nil {
				mk = p.opts.MapKey(meta, current)
			}
			return mk(key, meta)
		}
	}
	st, _, err := p.c.RestoreSnapshot(f, ropts)
	p.restored.Set(int64(st.Restored))
	p.dropped.Add(int64(st.DroppedExpired + st.DroppedKey))
	if err != nil {
		p.coldStart.Inc()
	}
	return st, err
}

// Snapshot writes one snapshot now, atomically (tmp + rename).
func (p *Persister) Snapshot() error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	start := p.clk.Now()
	var meta SnapshotMeta
	if p.opts.Meta != nil {
		meta = p.opts.Meta()
	}
	meta.SavedAt = start.UnixNano()

	tmp := p.opts.Path + ".tmp"
	if err := os.MkdirAll(filepath.Dir(p.opts.Path), 0o755); err != nil {
		p.snapErrs.Inc()
		return fmt.Errorf("bytecache: snapshot: %w", err)
	}
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		p.snapErrs.Inc()
		return fmt.Errorf("bytecache: snapshot: %w", err)
	}
	entries, err := p.c.writeSnapshot(f, meta, p.opts.Compress)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, p.opts.Path)
	}
	if err != nil {
		_ = os.Remove(tmp)
		p.snapErrs.Inc()
		return fmt.Errorf("bytecache: snapshot: %w", err)
	}
	p.snaps.Inc()
	p.snapSize.Set(int64(entries))
	p.snapDur.Observe(p.clk.Since(start))
	return nil
}

// Start launches the periodic snapshot loop when an interval is set.
func (p *Persister) Start() {
	if p == nil || p.opts.Interval <= 0 || p.stop != nil {
		return
	}
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	go func() {
		defer close(p.done)
		t := time.NewTicker(p.opts.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				_ = p.Snapshot() // failure is counted; next tick retries
			case <-p.stop:
				return
			}
		}
	}()
}

// Close stops the loop and writes a final snapshot, so a clean shutdown
// always restarts warm even with no interval configured.
func (p *Persister) Close() error {
	if p == nil {
		return nil
	}
	if p.stop != nil {
		close(p.stop)
		<-p.done
		p.stop = nil
	}
	return p.Snapshot()
}
