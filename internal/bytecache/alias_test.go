package bytecache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestGetAliasSurvivesCompaction pins the zero-copy contract the service
// relies on to write cache hits straight to the wire: a slice returned by
// Get stays valid and unchanged while eviction marks the entry dead,
// compaction rewrites the arena, and the same key is overwritten with a
// different value. Run under -race this also proves no writer ever touches
// the aliased bytes: arenas are append-only and compaction swaps in a
// fresh one rather than rewriting in place.
func TestGetAliasSurvivesCompaction(t *testing.T) {
	c := New(Options{Shards: 1, MaxBytes: 64 << 10, CompactFraction: 0.1})

	key := []byte("pinned-key")
	want := bytes.Repeat([]byte("pinned-value-"), 16)
	c.Set(key, want, -1)
	alias, ok := c.Get(key)
	if !ok {
		t.Fatal("pinned key missing")
	}

	// Writers churn the shard hard enough to force eviction of the pinned
	// entry, repeated compaction cycles, and re-insertion of the same key
	// with different bytes — everything that could conceivably reuse the
	// aliased region.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			val := bytes.Repeat([]byte{byte('a' + w)}, 512)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Set(fmt.Appendf(nil, "churn-%d-%d", w, i%256), val, -1)
				if i%64 == 0 {
					c.Set(key, val, -1) // overwrite the pinned key itself
					c.Delete(fmt.Appendf(nil, "churn-%d-%d", w, (i+128)%256))
				}
			}
		}(w)
	}

	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if !bytes.Equal(alias, want) {
			close(stop)
			wg.Wait()
			t.Fatal("aliased bytes changed under churn")
		}
	}
	close(stop)
	wg.Wait()

	if got := c.Stats(); got.Compactions == 0 {
		t.Fatalf("churn produced no compaction; the test exercised nothing: %+v", got)
	}
	if !bytes.Equal(alias, want) {
		t.Fatal("aliased bytes changed after churn")
	}
}
