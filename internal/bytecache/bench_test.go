package bytecache

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchFill loads n distinct keys with ~128-byte values and returns the
// key set. Keys are pre-built so the measured loop performs no
// formatting.
func benchFill(b *testing.B, c *Cache, n int) [][]byte {
	b.Helper()
	val := make([]byte, 128)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	keys := make([][]byte, n)
	for i := 0; i < n; i++ {
		keys[i] = fmt.Appendf(nil, "info=host&filter=(kw=node%07d)&attrs=*", i)
		c.Set(keys[i], val, -1)
	}
	return keys
}

// BenchmarkGet1MZipf measures the hit path at 1M resident keys with a
// Zipf(1.1) access pattern — the shape the loadgen keyed mode drives at
// the service level. Extra metrics: hit ratio and resident bytes.
func BenchmarkGet1MZipf(b *testing.B) {
	const nKeys = 1 << 20
	c := New(Options{Shards: 256, MaxBytes: 1 << 30})
	keys := benchFill(b, c, nKeys)
	rng := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(rng, 1.1, 1, nKeys-1)
	// Pre-draw the access sequence so the measured loop is cache work
	// only.
	seq := make([]uint32, 1<<16)
	for i := range seq {
		seq[i] = uint32(zipf.Uint64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	var hits, total int64
	for i := 0; i < b.N; i++ {
		k := keys[seq[i&(len(seq)-1)]]
		if _, ok := c.Get(k); ok {
			hits++
		}
		total++
	}
	b.StopTimer()
	if total > 0 {
		b.ReportMetric(float64(hits)/float64(total), "hit_ratio")
	}
	b.ReportMetric(float64(c.Stats().LiveBytes), "resident_bytes")
}

// BenchmarkGet1MUniform is the adversarial counterpart: uniform access
// defeats CPU caches and stresses the map probe + key compare.
func BenchmarkGet1MUniform(b *testing.B) {
	const nKeys = 1 << 20
	c := New(Options{Shards: 256, MaxBytes: 1 << 30})
	keys := benchFill(b, c, nKeys)
	rng := rand.New(rand.NewSource(42))
	seq := make([]uint32, 1<<16)
	for i := range seq {
		seq[i] = uint32(rng.Intn(nKeys))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(keys[seq[i&(len(seq)-1)]])
	}
}

// BenchmarkSet measures the fill path including eviction pressure: the
// byte budget holds roughly half the working set, so sets continuously
// evict and periodically compact.
func BenchmarkSet(b *testing.B) {
	c := New(Options{Shards: 64, MaxBytes: 8 << 20})
	val := make([]byte, 128)
	keys := make([][]byte, 1<<16)
	for i := range keys {
		keys[i] = fmt.Appendf(nil, "set-bench-key-%07d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Set(keys[i&(len(keys)-1)], val, -1)
	}
}
