// Package clock provides an injectable time source so that caches,
// degradation functions, schedulers, and authorization contracts can be
// tested deterministically. Production code uses Real; tests use a Fake
// that only moves when advanced.
package clock

import (
	"sync"
	"time"
)

// Clock is a minimal time source. Implementations must be safe for
// concurrent use.
type Clock interface {
	// Now returns the current time of this source.
	Now() time.Time
	// Since returns the elapsed time between t and Now.
	Since(t time.Time) time.Duration
}

// Real is the wall clock. The zero value is ready to use.
type Real struct{}

// Now implements Clock using time.Now.
func (Real) Now() time.Time { return time.Now() }

// Since implements Clock using time.Since.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// System is a shared wall-clock instance.
var System Clock = Real{}

// Sleeper is implemented by clocks that can pause the caller. Real sleeps
// on the wall clock; Fake advances itself instead, so backoff loops under
// test complete instantly yet still observe the elapsed fake time.
type Sleeper interface {
	Sleep(d time.Duration)
}

// Sleep implements Sleeper using time.Sleep.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// SleepFor pauses for d on clk's timeline: through clk's Sleeper
// implementation when it has one, otherwise by sleeping on the wall clock.
func SleepFor(clk Clock, d time.Duration) {
	if d <= 0 {
		return
	}
	if s, ok := clk.(Sleeper); ok {
		s.Sleep(d)
		return
	}
	time.Sleep(d)
}

// Fake is a manually advanced clock for tests. The zero value starts at the
// zero time; NewFake starts at a given instant.
type Fake struct {
	mu  sync.Mutex
	now time.Time
}

// NewFake returns a Fake clock pinned to start.
func NewFake(start time.Time) *Fake { return &Fake{now: start} }

// Now returns the fake current time.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Since returns the fake elapsed time since t.
func (f *Fake) Since(t time.Time) time.Duration { return f.Now().Sub(t) }

// Advance moves the clock forward by d and returns the new time.
func (f *Fake) Advance(d time.Duration) time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
	return f.now
}

// Sleep implements Sleeper by advancing the fake clock, so code sleeping
// on a Fake never blocks the test.
func (f *Fake) Sleep(d time.Duration) {
	if d > 0 {
		f.Advance(d)
	}
}

// Set pins the clock to t.
func (f *Fake) Set(t time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = t
}
