package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealClock(t *testing.T) {
	var c Real
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Errorf("Now = %v outside [%v, %v]", got, before, after)
	}
	if d := c.Since(before); d < 0 {
		t.Errorf("Since = %v", d)
	}
	if System == nil {
		t.Error("System clock is nil")
	}
}

func TestFakeClock(t *testing.T) {
	start := time.Date(2002, 7, 24, 0, 0, 0, 0, time.UTC)
	f := NewFake(start)
	if !f.Now().Equal(start) {
		t.Errorf("Now = %v", f.Now())
	}
	got := f.Advance(90 * time.Second)
	if !got.Equal(start.Add(90 * time.Second)) {
		t.Errorf("Advance returned %v", got)
	}
	if f.Since(start) != 90*time.Second {
		t.Errorf("Since = %v", f.Since(start))
	}
	f.Set(start)
	if !f.Now().Equal(start) {
		t.Errorf("Set failed: %v", f.Now())
	}
}

func TestFakeClockConcurrent(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				f.Advance(time.Millisecond)
				_ = f.Now()
			}
		}()
	}
	wg.Wait()
	if got := f.Now(); !got.Equal(time.Unix(0, 0).Add(8 * 1000 * time.Millisecond)) {
		t.Errorf("final time = %v", got)
	}
}
