package cache

import (
	"context"
	"testing"
	"time"
)

func benchEntry(ttl time.Duration) *Entry {
	return NewEntry(Options{TTL: ttl}, func(ctx context.Context) (any, error) {
		return 42, nil
	})
}

func BenchmarkCachedHit(b *testing.B) {
	e := benchEntry(time.Hour)
	ctx := context.Background()
	if _, err := e.Update(ctx); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Get(ctx, Cached, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkImmediateUpdate(b *testing.B) {
	e := benchEntry(time.Hour)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Get(ctx, Immediate, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuery(b *testing.B) {
	e := benchEntry(time.Hour)
	if _, err := e.Update(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCachedHitParallel(b *testing.B) {
	e := benchEntry(time.Hour)
	ctx := context.Background()
	if _, err := e.Update(ctx); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := e.Get(ctx, Cached, 0); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
