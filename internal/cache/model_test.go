package cache

// Model-based test: a random single-threaded operation sequence against a
// fake clock must match a trivially-correct reference model of the
// paper's cache semantics (TTL, delay, response modes).

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"infogram/internal/clock"
)

// model is the reference implementation of one cache entry.
type model struct {
	ttl      time.Duration
	delay    time.Duration
	value    int
	hasValue bool
	fetched  time.Time
	lastExec time.Time
	execs    int
}

func (m *model) fresh(now time.Time) bool {
	return m.hasValue && m.ttl > 0 && now.Sub(m.fetched) <= m.ttl
}

func (m *model) withinDelay(now time.Time) bool {
	return m.delay > 0 && m.hasValue && now.Sub(m.lastExec) < m.delay
}

// get mirrors Entry.Get for a single-threaded caller; returns the value
// the cache should serve and whether the provider should have executed.
func (m *model) get(mode Mode, now time.Time, nextValue int) (value int, executed, errNever bool) {
	switch mode {
	case Last:
		if !m.hasValue {
			return 0, false, true
		}
		return m.value, false, false
	case Cached:
		if m.fresh(now) {
			return m.value, false, false
		}
	case Immediate:
	}
	if m.withinDelay(now) {
		return m.value, false, false
	}
	m.execs++
	m.value = nextValue
	m.hasValue = true
	m.fetched = now
	m.lastExec = now
	return m.value, true, false
}

func TestModelEquivalence(t *testing.T) {
	const seeds = 30
	for seed := int64(0); seed < seeds; seed++ {
		r := rand.New(rand.NewSource(seed))
		ttl := time.Duration(r.Intn(500)) * time.Millisecond
		delay := time.Duration(r.Intn(200)) * time.Millisecond
		clk := clock.NewFake(time.Unix(10_000, 0))

		counter := 0
		entry := NewEntry(Options{TTL: ttl, Delay: delay, Clock: clk},
			func(ctx context.Context) (any, error) {
				counter++
				return counter, nil
			})
		ref := &model{ttl: ttl, delay: delay}

		ctx := context.Background()
		for step := 0; step < 300; step++ {
			switch r.Intn(5) {
			case 0:
				clk.Advance(time.Duration(r.Intn(300)) * time.Millisecond)
			case 1, 2:
				compare(t, seed, step, entry, ref, Cached, clk.Now(), counter)
			case 3:
				compare(t, seed, step, entry, ref, Immediate, clk.Now(), counter)
			case 4:
				compare(t, seed, step, entry, ref, Last, clk.Now(), counter)
			}
			if t.Failed() {
				return
			}
			_ = ctx
		}
		if int64(ref.execs) != entry.Stats().Execs {
			t.Errorf("seed %d: model execs %d != entry execs %d", seed, ref.execs, entry.Stats().Execs)
		}
	}
}

func compare(t *testing.T, seed int64, step int, entry *Entry, ref *model, mode Mode, now time.Time, counterBefore int) {
	t.Helper()
	wantValue, _, wantNever := ref.get(mode, now, counterBefore+1)
	res, err := entry.Get(context.Background(), mode, 0)
	if wantNever {
		if !errors.Is(err, ErrNeverFetched) {
			t.Errorf("seed %d step %d mode %v: want ErrNeverFetched, got %v (res %+v)", seed, step, mode, err, res)
		}
		return
	}
	if err != nil {
		t.Errorf("seed %d step %d mode %v: unexpected error %v", seed, step, mode, err)
		return
	}
	if res.Value.(int) != wantValue {
		t.Errorf("seed %d step %d mode %v: value %v, model wants %d", seed, step, mode, res.Value, wantValue)
	}
}
