package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"infogram/internal/clock"
	"infogram/internal/metrics"
	"infogram/internal/quality"
)

// counter is an UpdateFunc that counts executions and returns a fresh
// value each time.
type counter struct {
	n   atomic.Int64
	err error
}

func (c *counter) fn(context.Context) (any, error) {
	n := c.n.Add(1)
	if c.err != nil {
		return nil, c.err
	}
	return int(n), nil
}

func TestQueryBeforeFetch(t *testing.T) {
	e := NewEntry(Options{TTL: time.Second}, (&counter{}).fn)
	if _, err := e.Query(); !errors.Is(err, ErrNeverFetched) {
		t.Errorf("got %v, want ErrNeverFetched", err)
	}
}

func TestQueryWithinTTL(t *testing.T) {
	clk := clock.NewFake(time.Unix(1000, 0))
	c := &counter{}
	e := NewEntry(Options{TTL: time.Second, Clock: clk}, c.fn)
	if _, err := e.Update(context.Background()); err != nil {
		t.Fatal(err)
	}
	r, err := e.Query()
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if r.Value.(int) != 1 || !r.FromCache {
		t.Errorf("r = %+v", r)
	}
	clk.Advance(2 * time.Second)
	if _, err := e.Query(); !errors.Is(err, ErrStale) {
		t.Errorf("got %v, want ErrStale", err)
	}
}

func TestCachedModeHitsWithinTTL(t *testing.T) {
	clk := clock.NewFake(time.Unix(1000, 0))
	c := &counter{}
	e := NewEntry(Options{TTL: time.Second, Clock: clk}, c.fn)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		r, err := e.Get(ctx, Cached, 0)
		if err != nil {
			t.Fatal(err)
		}
		if r.Value.(int) != 1 {
			t.Fatalf("iteration %d: value %v", i, r.Value)
		}
	}
	if got := c.n.Load(); got != 1 {
		t.Errorf("provider executed %d times, want 1", got)
	}
	st := e.Stats()
	if st.Execs != 1 || st.Hits != 9 {
		t.Errorf("stats = %+v", st)
	}
	// After expiry, the next cached read refreshes.
	clk.Advance(2 * time.Second)
	r, err := e.Get(ctx, Cached, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Value.(int) != 2 || r.FromCache {
		t.Errorf("after expiry: %+v", r)
	}
}

func TestZeroTTLExecutesEveryTime(t *testing.T) {
	// Table 1: "0 specifies execution of the keyword every time it is
	// requested."
	c := &counter{}
	e := NewEntry(Options{TTL: 0}, c.fn)
	ctx := context.Background()
	for i := 1; i <= 5; i++ {
		r, err := e.Get(ctx, Cached, 0)
		if err != nil {
			t.Fatal(err)
		}
		if r.Value.(int) != i {
			t.Errorf("read %d got value %v", i, r.Value)
		}
	}
	if c.n.Load() != 5 {
		t.Errorf("execs = %d, want 5", c.n.Load())
	}
}

func TestImmediateModeBypassesTTL(t *testing.T) {
	clk := clock.NewFake(time.Unix(1000, 0))
	c := &counter{}
	e := NewEntry(Options{TTL: time.Hour, Clock: clk}, c.fn)
	ctx := context.Background()
	for i := 1; i <= 3; i++ {
		r, err := e.Get(ctx, Immediate, 0)
		if err != nil {
			t.Fatal(err)
		}
		if r.Value.(int) != i {
			t.Errorf("immediate read %d = %v", i, r.Value)
		}
	}
	// Immediate updated the cache: a cached read sees the newest value.
	r, err := e.Get(ctx, Cached, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Value.(int) != 3 || !r.FromCache {
		t.Errorf("cached after immediate = %+v", r)
	}
}

func TestLastMode(t *testing.T) {
	clk := clock.NewFake(time.Unix(1000, 0))
	c := &counter{}
	e := NewEntry(Options{TTL: time.Millisecond, Clock: clk}, c.fn)
	ctx := context.Background()
	if _, err := e.Get(ctx, Last, 0); !errors.Is(err, ErrNeverFetched) {
		t.Errorf("Last before fetch: %v", err)
	}
	if _, err := e.Update(ctx); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Hour) // far past TTL
	r, err := e.Get(ctx, Last, 0)
	if err != nil {
		t.Fatalf("Last: %v", err)
	}
	if r.Value.(int) != 1 || !r.FromCache {
		t.Errorf("Last = %+v", r)
	}
	if c.n.Load() != 1 {
		t.Errorf("Last mode executed the provider (%d execs)", c.n.Load())
	}
}

func TestDelaySuppressesExecution(t *testing.T) {
	// §6.2: "a delay that controls how many milliseconds must pass
	// between consecutive calls of updateState before the actual
	// information is obtained".
	clk := clock.NewFake(time.Unix(1000, 0))
	c := &counter{}
	e := NewEntry(Options{TTL: time.Nanosecond, Delay: 100 * time.Millisecond, Clock: clk}, c.fn)
	ctx := context.Background()
	if _, err := e.Update(ctx); err != nil {
		t.Fatal(err)
	}
	// Within the delay even Immediate serves the cached value.
	clk.Advance(50 * time.Millisecond)
	r, err := e.Get(ctx, Immediate, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.FromCache || r.Value.(int) != 1 {
		t.Errorf("within delay: %+v", r)
	}
	// After the delay the update happens.
	clk.Advance(60 * time.Millisecond)
	r, err = e.Get(ctx, Immediate, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.FromCache || r.Value.(int) != 2 {
		t.Errorf("after delay: %+v", r)
	}
	if c.n.Load() != 2 {
		t.Errorf("execs = %d, want 2", c.n.Load())
	}
}

func TestSetDelay(t *testing.T) {
	clk := clock.NewFake(time.Unix(1000, 0))
	c := &counter{}
	e := NewEntry(Options{TTL: time.Nanosecond, Clock: clk}, c.fn)
	ctx := context.Background()
	if _, err := e.Update(ctx); err != nil {
		t.Fatal(err)
	}
	e.SetDelay(time.Minute)
	clk.Advance(time.Second)
	r, err := e.Get(ctx, Immediate, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.FromCache {
		t.Errorf("SetDelay not applied: %+v", r)
	}
}

func TestSingleFlightCoalescing(t *testing.T) {
	// §6.2: "If multiple updateState methods are invoked, monitors are
	// used to perform only one such update at a time."
	started := make(chan struct{})
	release := make(chan struct{})
	var execs atomic.Int64
	e := NewEntry(Options{TTL: time.Hour}, func(ctx context.Context) (any, error) {
		if execs.Add(1) == 1 {
			close(started)
			<-release
		}
		return "v", nil
	})
	ctx := context.Background()

	firstDone := make(chan error, 1)
	go func() {
		_, err := e.Update(ctx)
		firstDone <- err
	}()
	<-started

	const waiters = 8
	var wg sync.WaitGroup
	results := make(chan Result, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := e.Update(ctx)
			if err == nil {
				results <- r
			}
		}()
	}
	// Give the waiters a moment to pile onto the in-flight update.
	time.Sleep(20 * time.Millisecond)
	close(release)
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(results)
	got := 0
	for r := range results {
		got++
		if r.Value.(string) != "v" {
			t.Errorf("waiter value = %v", r.Value)
		}
	}
	if got != waiters {
		t.Errorf("%d waiters succeeded, want %d", got, waiters)
	}
	if n := execs.Load(); n != 1 {
		t.Errorf("execs = %d, want 1 (single flight)", n)
	}
	if e.Stats().Coalesced == 0 {
		t.Error("no coalesced waits recorded")
	}
}

func TestCoalescedWaitersSeeError(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	first := true
	e := NewEntry(Options{TTL: time.Hour}, func(ctx context.Context) (any, error) {
		if first {
			first = false
			close(started)
			<-release
		}
		return nil, errors.New("boom")
	})
	ctx := context.Background()
	go func() {
		_, _ = e.Update(ctx)
	}()
	<-started
	done := make(chan error, 1)
	go func() {
		_, err := e.Update(ctx)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(release)
	if err := <-done; err == nil {
		t.Error("coalesced waiter should see the update error")
	}
}

func TestWaitCancellation(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	e := NewEntry(Options{TTL: time.Hour}, func(ctx context.Context) (any, error) {
		close(started)
		<-release
		return "v", nil
	})
	go func() { _, _ = e.Update(context.Background()) }()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.Get(ctx, Cached, 0)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("got %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled waiter did not return")
	}
	close(release)
}

func TestUpdateError(t *testing.T) {
	c := &counter{err: errors.New("provider down")}
	e := NewEntry(Options{TTL: time.Second}, c.fn)
	if _, err := e.Update(context.Background()); err == nil {
		t.Error("expected error")
	}
	// The error does not poison the entry: a later success fills it.
	c.err = nil
	r, err := e.Update(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.Value.(int) != 2 {
		t.Errorf("value = %v", r.Value)
	}
}

func TestQualityThresholdForcesRefresh(t *testing.T) {
	// §6.5 quality tag: "If the degradation function of any of its
	// returned attributes is below that threshold, this attribute is
	// regenerated by the associated command."
	clk := clock.NewFake(time.Unix(1000, 0))
	c := &counter{}
	e := NewEntry(Options{
		TTL:     time.Hour, // TTL alone would keep the value
		Degrade: quality.Linear{Horizon: 10 * time.Second},
		Clock:   clk,
	}, c.fn)
	ctx := context.Background()
	if _, err := e.Update(ctx); err != nil {
		t.Fatal(err)
	}
	// Age 5s: quality 50. Threshold 40 -> cached value acceptable.
	clk.Advance(5 * time.Second)
	r, err := e.Get(ctx, Cached, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !r.FromCache || r.Quality != 50 {
		t.Errorf("threshold 40: %+v", r)
	}
	// Threshold 60 -> refresh.
	r, err = e.Get(ctx, Cached, 60)
	if err != nil {
		t.Fatal(err)
	}
	if r.FromCache {
		t.Errorf("threshold 60 should refresh: %+v", r)
	}
	if c.n.Load() != 2 {
		t.Errorf("execs = %d, want 2", c.n.Load())
	}
}

func TestQualityReportedWithoutDegradeIs100(t *testing.T) {
	e := NewEntry(Options{TTL: time.Hour}, (&counter{}).fn)
	r, err := e.Update(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.Quality != 100 {
		t.Errorf("Quality = %v", r.Quality)
	}
}

func TestSeriesRecordsUpdateDurations(t *testing.T) {
	series := &metrics.Series{}
	e := NewEntry(Options{TTL: 0, Series: series}, (&counter{}).fn)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := e.Update(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if st := series.Snapshot(); st.Count != 3 {
		t.Errorf("series count = %d", st.Count)
	}
}

func TestDriftFeedsSelfCorrection(t *testing.T) {
	clk := clock.NewFake(time.Unix(1000, 0))
	sc := quality.NewSelfCorrecting(quality.Linear{Horizon: 10 * time.Second})
	var v atomic.Int64
	e := NewEntry(Options{
		TTL:     time.Nanosecond,
		Degrade: sc,
		Drift: func(old, new any) float64 {
			o, n := float64(old.(int64)), float64(new.(int64))
			if o == 0 {
				return 0
			}
			d := (n - o) / o
			if d < 0 {
				d = -d
			}
			return d
		},
		Clock: clk,
	}, func(ctx context.Context) (any, error) {
		return v.Add(100), nil // doubles-ish each time: heavy drift
	})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := e.Update(ctx); err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Second)
	}
	if sc.Observations() == 0 {
		t.Error("drift observations were not fed to the degradation function")
	}
}

func TestInvalidMode(t *testing.T) {
	e := NewEntry(Options{}, (&counter{}).fn)
	if _, err := e.Get(context.Background(), Mode(99), 0); err == nil {
		t.Error("expected error for invalid mode")
	}
}

func TestParseModeAndString(t *testing.T) {
	for _, m := range []Mode{Cached, Immediate, Last} {
		back, err := ParseMode(m.String())
		if err != nil || back != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), back, err)
		}
	}
	if m, err := ParseMode(""); err != nil || m != Cached {
		t.Errorf("empty mode: %v %v", m, err)
	}
	if _, err := ParseMode("weird"); err == nil {
		t.Error("expected error")
	}
	if s := Mode(42).String(); s != "mode(42)" {
		t.Errorf("String = %q", s)
	}
}

func TestConcurrentMixedReads(t *testing.T) {
	var execs atomic.Int64
	e := NewEntry(Options{TTL: time.Millisecond}, func(ctx context.Context) (any, error) {
		return int(execs.Add(1)), nil
	})
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				mode := []Mode{Cached, Immediate}[j%2]
				if _, err := e.Get(ctx, mode, 0); err != nil {
					errs <- fmt.Errorf("goroutine %d: %w", i, err)
					return
				}
				if _, err := e.Query(); err != nil &&
					!errors.Is(err, ErrStale) && !errors.Is(err, ErrNeverFetched) {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
