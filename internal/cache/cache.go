// Package cache implements the information-caching model of the paper:
// each key information provider caches its last result with a time-to-live
// (§5.1), a minimum inter-execution delay (§6.2), coalesced single-flight
// updates ("If multiple updateState methods are invoked, monitors are used
// to perform only one such update at a time", §6.2), the three response
// modes of the xRSL response tag (§6.5), and quality-threshold-driven
// regeneration (§6.3).
package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"infogram/internal/clock"
	"infogram/internal/metrics"
	"infogram/internal/quality"
	"infogram/internal/telemetry"
)

// Mode selects how a read interacts with the cache; it maps one-to-one to
// the xRSL response tag values.
type Mode int

// Response modes (paper §6.5).
const (
	// Cached returns the cached value if it is valid, otherwise updates
	// the cache first. This is the default.
	Cached Mode = iota
	// Immediate executes the provider now regardless of TTL (still
	// honouring the inter-execution delay) and updates the cache.
	Immediate
	// Last returns whatever is stored without updating, failing if the
	// entry has never been filled.
	Last
)

// String renders the mode as the response tag value.
func (m Mode) String() string {
	switch m {
	case Cached:
		return "cached"
	case Immediate:
		return "immediate"
	case Last:
		return "last"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ParseMode converts a response tag value to a Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "cached", "":
		return Cached, nil
	case "immediate":
		return Immediate, nil
	case "last":
		return Last, nil
	}
	return Cached, fmt.Errorf("cache: unknown response mode %q", s)
}

// UpdateFunc produces a fresh value; it is the cache-facing face of the
// paper's blocking updateState method.
type UpdateFunc func(ctx context.Context) (any, error)

// Errors returned by cache reads.
var (
	// ErrNeverFetched is returned when a non-updating read (Query, Last)
	// finds an entry that has never been filled — the paper's
	// "otherwise, it throws an exception" for querystate.
	ErrNeverFetched = errors.New("cache: value never fetched")
	// ErrStale is returned by Query when the TTL has expired.
	ErrStale = errors.New("cache: value expired")
)

// Options configures an Entry.
type Options struct {
	// TTL is the lifetime of a cached value. Zero means "execute the
	// keyword every time it is requested" (Table 1's TTL 0 row): the
	// cache never reports a value as fresh.
	TTL time.Duration
	// Delay is the minimum interval between consecutive provider
	// executions; requests arriving sooner are served from the cache even
	// in Immediate mode (paper §6.2).
	Delay time.Duration
	// Degrade optionally attaches a degradation function; required for
	// quality-threshold reads.
	Degrade quality.Degradation
	// Drift optionally measures the relative change between the previous
	// and new value; when Degrade is self-correcting the measurement is
	// fed back as an observation.
	Drift func(old, new any) float64
	// Series optionally records provider execution durations for the
	// performance tag.
	Series *metrics.Series
	// Telemetry optionally attaches service-wide cache counters; see
	// SetTelemetry. Nil metrics inside are no-ops.
	Telemetry Counters
	// Clock defaults to the system clock.
	Clock clock.Clock
}

// Counters is the telemetry an entry feeds: reads served from cache,
// provider executions, and evictions (a stored value superseded by a fresh
// execution). All fields are optional.
type Counters struct {
	Hits      *telemetry.Counter
	Misses    *telemetry.Counter
	Evictions *telemetry.Counter
}

// Entry caches the result of one key information provider.
type Entry struct {
	opts Options
	fn   UpdateFunc

	mu        sync.Mutex
	value     any
	fetchedAt time.Time
	hasValue  bool
	lastExec  time.Time     // start of the most recent actual execution
	inflight  chan struct{} // non-nil while an update is running
	lastErr   error

	execs     atomic.Int64 // provider executions performed
	hits      atomic.Int64 // reads served from cache
	coalesced atomic.Int64 // reads that waited on another goroutine's update
}

// NewEntry builds an entry around fn.
func NewEntry(opts Options, fn UpdateFunc) *Entry {
	if opts.Clock == nil {
		opts.Clock = clock.System
	}
	return &Entry{opts: opts, fn: fn}
}

// Result is a cache read outcome.
type Result struct {
	Value     any
	FetchedAt time.Time
	Age       time.Duration
	// Quality is the degradation score at read time; 100 when no
	// degradation function is configured.
	Quality quality.Score
	// FromCache is true when the value was served without executing the
	// provider in this call.
	FromCache bool
	// Stale is true when the value was served past its TTL — the
	// degraded-collection fallback that prefers marked stale data over no
	// data during a provider outage. Stale results are never cached
	// downstream.
	Stale bool
}

// Stats is an entry's counters, used by the E5 experiment to count
// provider executions saved by caching.
type Stats struct {
	Execs     int64
	Hits      int64
	Coalesced int64
}

// Stats returns the entry's counters.
func (e *Entry) Stats() Stats {
	return Stats{Execs: e.execs.Load(), Hits: e.hits.Load(), Coalesced: e.coalesced.Load()}
}

// TTL returns the configured time-to-live.
func (e *Entry) TTL() time.Duration { return e.opts.TTL }

// SetDelay changes the minimum inter-execution delay (the paper's
// setDelay).
func (e *Entry) SetDelay(d time.Duration) {
	e.mu.Lock()
	e.opts.Delay = d
	e.mu.Unlock()
}

// SetTelemetry attaches (or replaces) the entry's cache counters; used to
// retrofit telemetry onto providers registered before the service's
// registry existed.
func (e *Entry) SetTelemetry(c Counters) {
	e.mu.Lock()
	e.opts.Telemetry = c
	e.mu.Unlock()
}

// hitLocked counts one cache-served read. Caller holds e.mu.
func (e *Entry) hitLocked() {
	e.hits.Add(1)
	e.opts.Telemetry.Hits.Inc()
}

// qualityAt computes the degradation score for a value of the given age.
func (e *Entry) qualityAt(age time.Duration) quality.Score {
	if e.opts.Degrade == nil {
		return 100
	}
	return e.opts.Degrade.Quality(age)
}

// freshLocked reports whether the cached value satisfies TTL and the
// quality threshold. Caller holds e.mu.
func (e *Entry) freshLocked(now time.Time, threshold quality.Score) bool {
	if !e.hasValue {
		return false
	}
	age := now.Sub(e.fetchedAt)
	if e.opts.TTL <= 0 || age > e.opts.TTL {
		return false
	}
	if threshold > 0 && e.qualityAt(age) < threshold {
		return false
	}
	return true
}

// withinDelayLocked reports whether a new execution is suppressed by the
// inter-execution delay. Caller holds e.mu.
func (e *Entry) withinDelayLocked(now time.Time) bool {
	return e.opts.Delay > 0 && e.hasValue && now.Sub(e.lastExec) < e.opts.Delay
}

// resultLocked snapshots the cached value. Caller holds e.mu.
func (e *Entry) resultLocked(now time.Time, fromCache bool) Result {
	age := now.Sub(e.fetchedAt)
	return Result{
		Value:     e.value,
		FetchedAt: e.fetchedAt,
		Age:       age,
		Quality:   e.qualityAt(age),
		FromCache: fromCache,
	}
}

// Query is the paper's non-blocking querystate: it returns the cached
// value only when it has been fetched before and the TTL has not expired;
// otherwise it returns ErrNeverFetched or ErrStale.
func (e *Entry) Query() (Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.opts.Clock.Now()
	if !e.hasValue {
		return Result{}, ErrNeverFetched
	}
	if !e.freshLocked(now, 0) {
		return e.resultLocked(now, true), ErrStale
	}
	e.hitLocked()
	return e.resultLocked(now, true), nil
}

// StaleResult returns whatever value is stored, regardless of TTL, with
// Result.Stale set when the TTL has lapsed. It never executes the
// provider: this is the outage fallback CollectDegraded reaches for when
// an execution has just failed, so "serve the last known value, marked" is
// the entire point. The second result is false when nothing was ever
// fetched.
func (e *Entry) StaleResult() (Result, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.hasValue {
		return Result{}, false
	}
	now := e.opts.Clock.Now()
	e.hitLocked()
	r := e.resultLocked(now, true)
	r.Stale = !e.freshLocked(now, 0)
	return r, true
}

// Update is the paper's blocking updateState: it refreshes the value
// (subject to the inter-execution delay and single-flight coalescing) and
// returns it.
func (e *Entry) Update(ctx context.Context) (Result, error) {
	return e.Get(ctx, Immediate, 0)
}

// Get reads the entry under the given response mode and quality threshold
// (0 disables the threshold). It is the entry point used by the InfoGram
// request dispatcher. A traced request records the lookup as a
// "cache.lookup" span annotated with whether the answer came from cache.
func (e *Entry) Get(ctx context.Context, mode Mode, threshold quality.Score) (Result, error) {
	ctx, sp := telemetry.StartSpan(ctx, "cache.lookup")
	r, err := e.get(ctx, mode, threshold)
	if sp != nil {
		if err != nil {
			sp.Fail(err.Error())
		} else if r.FromCache {
			sp.SetAttr("outcome", "hit")
		} else {
			sp.SetAttr("outcome", "miss")
		}
		sp.End()
	}
	return r, err
}

func (e *Entry) get(ctx context.Context, mode Mode, threshold quality.Score) (Result, error) {
	for {
		e.mu.Lock()
		now := e.opts.Clock.Now()
		switch mode {
		case Last:
			if !e.hasValue {
				e.mu.Unlock()
				return Result{}, ErrNeverFetched
			}
			e.hitLocked()
			r := e.resultLocked(now, true)
			e.mu.Unlock()
			return r, nil
		case Cached:
			if e.freshLocked(now, threshold) {
				e.hitLocked()
				r := e.resultLocked(now, true)
				e.mu.Unlock()
				return r, nil
			}
		case Immediate:
			// fall through to update
		default:
			e.mu.Unlock()
			return Result{}, fmt.Errorf("cache: invalid mode %v", mode)
		}

		// An update is needed. Delay suppression serves the stored value
		// instead of executing again.
		if e.withinDelayLocked(now) {
			e.hitLocked()
			r := e.resultLocked(now, true)
			e.mu.Unlock()
			return r, nil
		}

		if e.inflight != nil {
			// Another goroutine is updating; wait for it, then re-read.
			ch := e.inflight
			e.mu.Unlock()
			e.coalesced.Add(1)
			select {
			case <-ch:
				// After a coalesced wait, serve whatever the update
				// produced rather than looping into another execution.
				e.mu.Lock()
				if e.lastErr != nil {
					err := e.lastErr
					e.mu.Unlock()
					return Result{}, err
				}
				if e.hasValue {
					r := e.resultLocked(e.opts.Clock.Now(), true)
					e.mu.Unlock()
					return r, nil
				}
				e.mu.Unlock()
				continue
			case <-ctx.Done():
				return Result{}, ctx.Err()
			}
		}

		// We are the updater.
		ch := make(chan struct{})
		e.inflight = ch
		e.lastExec = now
		tel := e.opts.Telemetry
		e.mu.Unlock()
		tel.Misses.Inc()

		start := e.opts.Clock.Now()
		v, err := e.fn(ctx)
		elapsed := e.opts.Clock.Since(start)
		if e.opts.Series != nil {
			e.opts.Series.Observe(elapsed)
		}
		e.execs.Add(1)

		e.mu.Lock()
		e.inflight = nil
		e.lastErr = err
		if err == nil {
			if e.hasValue {
				tel.Evictions.Inc()
			}
			e.observeDriftLocked(v)
			e.value = v
			e.fetchedAt = e.opts.Clock.Now()
			e.hasValue = true
		}
		close(ch)
		if err != nil {
			e.mu.Unlock()
			return Result{}, fmt.Errorf("cache: update: %w", err)
		}
		r := e.resultLocked(e.opts.Clock.Now(), false)
		e.mu.Unlock()
		return r, nil
	}
}

// observeDriftLocked feeds value drift into a self-correcting degradation
// function. Caller holds e.mu.
func (e *Entry) observeDriftLocked(newValue any) {
	if e.opts.Drift == nil || !e.hasValue {
		return
	}
	sc, ok := e.opts.Degrade.(*quality.SelfCorrecting)
	if !ok {
		return
	}
	age := e.opts.Clock.Now().Sub(e.fetchedAt)
	sc.ObserveDrift(e.opts.Drift(e.value, newValue), age)
}
