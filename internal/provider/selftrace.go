package provider

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"infogram/internal/telemetry"
)

// SelfTraceKeyword is the keyword under which a service's retained
// request traces are published.
const SelfTraceKeyword = "selftrace"

// SelfTrace is the tracing counterpart of SelfMetrics: it renders the
// tracer's tail-sampled trace store as ordinary information attributes,
// so recent slow or errored request trees are queryable through the same
// xRSL info query used for any other keyword (&(info=selftrace)) — the
// paper's unified-protocol claim applied to the service's own latency
// decomposition.
type SelfTrace struct {
	tracer *telemetry.Tracer
}

// NewSelfTrace wraps a tracer as a provider.
func NewSelfTrace(t *telemetry.Tracer) *SelfTrace {
	return &SelfTrace{tracer: t}
}

// Keyword returns "selftrace".
func (p *SelfTrace) Keyword() string { return SelfTraceKeyword }

// Source describes the provider.
func (p *SelfTrace) Source() string { return "telemetry:traces" }

// Fetch snapshots the trace store. Each trace becomes one summary
// attribute (trace.<id>) plus one attribute per span
// (trace.<id>.span.<spanID>) carrying space-separated key=value pairs:
// name, parent, start, duration, and the error message when the span
// failed. Attribute values are machine-splittable so a client can
// rebuild the span tree from the LDIF answer.
func (p *SelfTrace) Fetch(context.Context) (Attributes, error) {
	traces := p.tracer.Store().Snapshot()
	attrs := Attributes{
		Attr{Name: "traces", Value: strconv.Itoa(len(traces))},
		Attr{Name: "traces_evicted", Value: strconv.FormatInt(p.tracer.Store().Evicted(), 10)},
	}
	for _, tr := range traces {
		base := "trace." + string(tr.Trace)
		attrs = append(attrs, Attr{Name: base, Value: fmt.Sprintf(
			"root=%s start=%s duration_us=%d err=%t spans=%d",
			tr.Root, tr.Start.UTC().Format(time.RFC3339Nano),
			tr.Duration.Microseconds(), tr.Err, len(tr.Spans))})
		for _, sp := range tr.Spans {
			var sb strings.Builder
			fmt.Fprintf(&sb, "name=%s parent=%s start=%s duration_us=%d",
				sp.Name, sp.Parent, sp.Start.UTC().Format(time.RFC3339Nano),
				sp.Duration.Microseconds())
			if sp.Err != "" {
				fmt.Fprintf(&sb, " err=%s", strings.ReplaceAll(sp.Err, " ", "_"))
			}
			for _, a := range sp.Attrs {
				fmt.Fprintf(&sb, " attr.%s=%s", a.Key, strings.ReplaceAll(a.Value, " ", "_"))
			}
			attrs = append(attrs, Attr{Name: base + ".span." + sp.ID.String(), Value: sb.String()})
		}
	}
	return attrs, nil
}

// AttrSchemas describes the attribute shape for reflection (§6.4). The
// concrete attributes depend on which traces the tail sampler retained,
// so the schema documents the families rather than enumerating them.
func (p *SelfTrace) AttrSchemas() []AttrSchema {
	return []AttrSchema{
		{Name: "traces", Type: "int", Doc: "traces currently retained by the tail sampler"},
		{Name: "traces_evicted", Type: "int", Doc: "retained traces evicted to bound the store"},
		{Name: "trace.<id>", Type: "string", Doc: "trace summary: root span, start, duration, error flag, span count"},
		{Name: "trace.<id>.span.<spanId>", Type: "string", Doc: "one span: name, parent, start, duration, error, attrs"},
	}
}
