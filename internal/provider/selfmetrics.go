package provider

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"infogram/internal/telemetry"
)

// SelfMetricsKeyword is the keyword under which a service's own telemetry
// is published.
const SelfMetricsKeyword = "selfmetrics"

// SelfMetrics is the self-monitoring information provider: it renders the
// service's telemetry registry as ordinary information attributes, so a
// client can ask InfoGram about InfoGram — request rates, latency
// distributions, cache effectiveness — through the same xRSL info query
// used for any other keyword (&(info=selfmetrics)). This dogfoods the
// paper's unified-protocol claim: the information service is itself just
// another key information provider, no second monitoring protocol needed.
type SelfMetrics struct {
	reg *telemetry.Registry
}

// NewSelfMetrics wraps a telemetry registry as a provider.
func NewSelfMetrics(reg *telemetry.Registry) *SelfMetrics {
	return &SelfMetrics{reg: reg}
}

// Keyword returns "selfmetrics".
func (p *SelfMetrics) Keyword() string { return SelfMetricsKeyword }

// Source describes the provider.
func (p *SelfMetrics) Source() string { return "telemetry" }

// metricAttrName flattens a metric name and its labels into an LDIF-safe
// attribute name: label values are dot-appended in label order
// ("infogram_requests_total.submit").
func metricAttrName(name string, labels []telemetry.Label) string {
	if len(labels) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	for _, l := range labels {
		sb.WriteByte('.')
		sb.WriteString(l.Value)
	}
	return sb.String()
}

// Fetch snapshots the registry. Counters and gauges become one attribute
// each; histograms expand to count, sum, mean, and p50/p99 estimates in
// seconds so latency distributions are queryable without Prometheus.
func (p *SelfMetrics) Fetch(context.Context) (Attributes, error) {
	var attrs Attributes
	for _, pt := range p.reg.Snapshot() {
		base := metricAttrName(pt.Name, pt.Labels)
		switch pt.Kind {
		case telemetry.KindCounter, telemetry.KindGauge:
			attrs = append(attrs, Attr{Name: base, Value: strconv.FormatInt(pt.Value, 10)})
		case telemetry.KindHistogram:
			attrs = append(attrs,
				Attr{Name: base + ".count", Value: strconv.FormatUint(pt.Hist.Count, 10)},
				Attr{Name: base + ".sum_seconds", Value: fmt.Sprintf("%.6f", pt.Hist.Sum.Seconds())},
				Attr{Name: base + ".mean_seconds", Value: fmt.Sprintf("%.6f", pt.Hist.Mean().Seconds())},
				Attr{Name: base + ".p50_seconds", Value: fmt.Sprintf("%.6f", pt.Hist.Quantile(0.50).Seconds())},
				Attr{Name: base + ".p99_seconds", Value: fmt.Sprintf("%.6f", pt.Hist.Quantile(0.99).Seconds())},
			)
		}
	}
	return attrs, nil
}

// AttrSchemas describes the attribute shape for reflection (§6.4). The
// concrete attribute set depends on which metrics the service has touched,
// so the schema documents the families rather than enumerating instances.
func (p *SelfMetrics) AttrSchemas() []AttrSchema {
	return []AttrSchema{
		{Name: "<metric>[.<label>]", Type: "int", Doc: "counter or gauge value"},
		{Name: "<metric>[.<label>].count", Type: "int", Doc: "histogram sample count"},
		{Name: "<metric>[.<label>].sum_seconds", Type: "float", Doc: "histogram sum in seconds"},
		{Name: "<metric>[.<label>].mean_seconds", Type: "float", Doc: "mean latency in seconds"},
		{Name: "<metric>[.<label>].p50_seconds", Type: "float", Doc: "estimated median latency"},
		{Name: "<metric>[.<label>].p99_seconds", Type: "float", Doc: "estimated 99th-percentile latency"},
	}
}
