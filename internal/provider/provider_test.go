package provider

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"infogram/internal/cache"
	"infogram/internal/clock"
	"infogram/internal/quality"
)

func TestParseOutputStructured(t *testing.T) {
	attrs := ParseOutput("total: 1024\nfree: 512\nused=512\n")
	if len(attrs) != 3 {
		t.Fatalf("attrs = %+v", attrs)
	}
	if attrs[0].Name != "total" || attrs[0].Value != "1024" {
		t.Errorf("attrs[0] = %+v", attrs[0])
	}
	if attrs[2].Name != "used" || attrs[2].Value != "512" {
		t.Errorf("attrs[2] = %+v", attrs[2])
	}
}

func TestParseOutputPlain(t *testing.T) {
	attrs := ParseOutput("Wed Jul 24 12:00:00 UTC 2002\n")
	if len(attrs) != 1 || attrs[0].Name != "output" {
		t.Fatalf("attrs = %+v", attrs)
	}
	multi := ParseOutput("file1\nfile2\nfile3\n")
	if len(multi) != 3 || multi[0].Name != "output.0" || multi[2].Value != "file3" {
		t.Errorf("multi = %+v", multi)
	}
}

func TestParseOutputMixed(t *testing.T) {
	attrs := ParseOutput("header line one\ncount: 3\n")
	if v, ok := attrs.Get("count"); !ok || v != "3" {
		t.Errorf("count = %q %v", v, ok)
	}
	if v, ok := attrs.Get("output"); !ok || v != "header line one" {
		t.Errorf("output = %q %v", v, ok)
	}
}

func TestParseOutputSkipsBadNames(t *testing.T) {
	// A "name" containing spaces is not structured.
	attrs := ParseOutput("not a name: value\n")
	if _, ok := attrs.Get("not a name"); ok {
		t.Error("space-containing name treated as structured")
	}
	if v, ok := attrs.Get("output"); !ok || v != "not a name: value" {
		t.Errorf("output = %q %v", v, ok)
	}
}

func TestNamespaced(t *testing.T) {
	attrs := Attributes{{Name: "total", Value: "1024"}}
	ns := attrs.Namespaced("Memory")
	if ns[0].Name != "Memory:total" {
		t.Errorf("Namespaced = %+v", ns)
	}
	// Original untouched.
	if attrs[0].Name != "total" {
		t.Error("Namespaced mutated its receiver")
	}
}

func TestExecProvider(t *testing.T) {
	p, err := NewExecProvider("Echo", "/bin/echo key: value")
	if err != nil {
		t.Fatal(err)
	}
	attrs, err := p.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := attrs.Get("key"); !ok || v != "value" {
		t.Errorf("attrs = %+v", attrs)
	}
	if p.Source() != "exec:/bin/echo key: value" {
		t.Errorf("Source = %q", p.Source())
	}
}

func TestExecProviderDateU(t *testing.T) {
	// Table 1 row: "60 Date date -u".
	p, err := NewExecProvider("Date", "date -u")
	if err != nil {
		t.Fatal(err)
	}
	attrs, err := p.Fetch(context.Background())
	if err != nil {
		t.Skipf("date not available: %v", err)
	}
	if len(attrs) == 0 {
		t.Error("date produced no attributes")
	}
}

func TestExecProviderFailure(t *testing.T) {
	p, err := NewExecProvider("Bad", "/nonexistent/binary")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Fetch(context.Background()); err == nil {
		t.Error("expected error")
	}
	if _, err := NewExecProvider("Empty", "   "); err == nil {
		t.Error("empty command accepted")
	}
}

func TestFileProvider(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "loadavg")
	if err := os.WriteFile(path, []byte("load1: 0.42\nload5: 0.36\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	p := NewFileProvider("Load", path)
	attrs, err := p.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := attrs.Get("load1"); v != "0.42" {
		t.Errorf("load1 = %q", v)
	}
	// Custom parser.
	p.Parse = func(content string) (Attributes, error) {
		return Attributes{{Name: "raw", Value: content}}, nil
	}
	attrs, err = p.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := attrs.Get("raw"); !ok {
		t.Error("custom parser not used")
	}
	// Missing file.
	if _, err := NewFileProvider("X", filepath.Join(dir, "missing")).Fetch(context.Background()); err == nil {
		t.Error("missing file fetch succeeded")
	}
}

func TestRuntimeProvider(t *testing.T) {
	attrs, err := RuntimeProvider{}.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cpus, ok := attrs.Get("cpus")
	if !ok {
		t.Fatal("no cpus attribute")
	}
	if n, err := strconv.Atoi(cpus); err != nil || n < 1 {
		t.Errorf("cpus = %q", cpus)
	}
	if len(RuntimeProvider{}.AttrSchemas()) == 0 {
		t.Error("runtime provider declares no schemas")
	}
}

func TestStaticProviderCopies(t *testing.T) {
	p := &StaticProvider{KeywordName: "S", Values: Attributes{{Name: "a", Value: "1"}}}
	attrs, err := p.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	attrs[0].Value = "mutated"
	again, _ := p.Fetch(context.Background())
	if again[0].Value != "1" {
		t.Error("StaticProvider shares its backing slice")
	}
}

func TestRegistryRegisterLookup(t *testing.T) {
	reg := NewRegistry(nil)
	reg.Register(&StaticProvider{KeywordName: "Memory"}, RegisterOptions{TTL: time.Second})
	reg.Register(&StaticProvider{KeywordName: "CPU"}, RegisterOptions{TTL: time.Second})

	if reg.Len() != 2 {
		t.Errorf("Len = %d", reg.Len())
	}
	if _, ok := reg.Lookup("memory"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	if _, ok := reg.Lookup("Disk"); ok {
		t.Error("unknown keyword found")
	}
	kws := reg.Keywords()
	if len(kws) != 2 || kws[0] != "Memory" || kws[1] != "CPU" {
		t.Errorf("Keywords = %v (registration order expected)", kws)
	}
}

func TestRegistryReplaceAndUnregister(t *testing.T) {
	reg := NewRegistry(nil)
	reg.Register(&StaticProvider{KeywordName: "K", Values: Attributes{{Name: "v", Value: "old"}}},
		RegisterOptions{TTL: time.Second})
	reg.Register(&StaticProvider{KeywordName: "K", Values: Attributes{{Name: "v", Value: "new"}}},
		RegisterOptions{TTL: time.Second})
	if reg.Len() != 1 {
		t.Fatalf("Len = %d after replace", reg.Len())
	}
	g, _ := reg.Lookup("K")
	attrs, err := g.UpdateState(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := attrs.Get("v"); v != "new" {
		t.Errorf("v = %q", v)
	}
	if !reg.Unregister("k") {
		t.Error("Unregister failed")
	}
	if reg.Unregister("k") {
		t.Error("double Unregister succeeded")
	}
	if reg.Len() != 0 || len(reg.Keywords()) != 0 {
		t.Error("registry not empty after unregister")
	}
}

func TestSystemInformationInterface(t *testing.T) {
	// The paper's interface methods behave as specified.
	clk := clock.NewFake(time.Unix(0, 0))
	reg := NewRegistry(clk)
	var n atomic.Int64
	p := NewFuncProvider("Counter", func(ctx context.Context) (Attributes, error) {
		return Attributes{{Name: "n", Value: strconv.FormatInt(n.Add(1), 10)}}, nil
	})
	g := reg.Register(p, RegisterOptions{
		TTL:     time.Second,
		Degrade: quality.Linear{Horizon: 2 * time.Second},
	})

	if g.Keyword() != "Counter" {
		t.Errorf("Keyword = %q", g.Keyword())
	}
	if g.TTL() != time.Second {
		t.Errorf("TTL = %v", g.TTL())
	}
	if g.Format() != "ldif" {
		t.Errorf("Format = %q", g.Format())
	}
	// querystate before any update: exception (error).
	if _, err := g.QueryState(); !errors.Is(err, cache.ErrNeverFetched) {
		t.Errorf("QueryState = %v", err)
	}
	if g.Validity() != 0 {
		t.Errorf("Validity before fetch = %v", g.Validity())
	}
	// updatestate blocks and returns.
	attrs, err := g.UpdateState(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := attrs.Get("n"); v != "1" {
		t.Errorf("n = %q", v)
	}
	// querystate now valid; ttl not expired.
	if _, err := g.QueryState(); err != nil {
		t.Errorf("QueryState after update: %v", err)
	}
	if g.Validity() != 100 {
		t.Errorf("Validity fresh = %v", g.Validity())
	}
	clk.Advance(time.Second)
	// Quality at age 1s with 2s horizon: 50.
	if v := g.Validity(); v != 50 {
		t.Errorf("Validity at 1s = %v", v)
	}
	clk.Advance(time.Second) // past TTL
	if _, err := g.QueryState(); !errors.Is(err, cache.ErrStale) {
		t.Errorf("QueryState stale = %v", err)
	}
	if st := g.AverageUpdateTime(); st.Count != 1 {
		t.Errorf("AverageUpdateTime count = %d", st.Count)
	}
}

func TestCollect(t *testing.T) {
	reg := NewRegistry(nil)
	reg.Register(&StaticProvider{KeywordName: "A", Values: Attributes{{Name: "x", Value: "1"}}},
		RegisterOptions{TTL: time.Second})
	reg.Register(&StaticProvider{KeywordName: "B", Values: Attributes{{Name: "y", Value: "2"}}},
		RegisterOptions{TTL: time.Second})

	// Explicit keywords, in request order.
	reports, err := reg.Collect(context.Background(), []string{"B", "A"}, cache.Cached, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 || reports[0].Keyword != "B" || reports[1].Keyword != "A" {
		t.Errorf("reports = %+v", reports)
	}
	// All keywords (info=all) in registration order.
	reports, err = reg.Collect(context.Background(), nil, cache.Cached, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 || reports[0].Keyword != "A" {
		t.Errorf("all reports = %+v", reports)
	}
	// Unknown keyword fails the whole request (all-or-nothing, §6.3).
	if _, err := reg.Collect(context.Background(), []string{"A", "Nope"}, cache.Cached, 0); err == nil {
		t.Error("unknown keyword did not fail")
	}
}

func TestSchema(t *testing.T) {
	reg := NewRegistry(nil)
	fp := NewFuncProvider("WithSchema", func(ctx context.Context) (Attributes, error) {
		return Attributes{{Name: "a", Value: "1"}}, nil
	})
	fp.Schemas = []AttrSchema{{Name: "a", Type: "int", Doc: "a doc"}}
	reg.Register(fp, RegisterOptions{
		TTL:     time.Second,
		Degrade: quality.Exponential{HalfLife: time.Second},
		Format:  "xml",
	})
	reg.Register(&StaticProvider{KeywordName: "Plain"}, RegisterOptions{TTL: 2 * time.Second})

	schema := reg.Schema()
	if len(schema) != 2 {
		t.Fatalf("schema = %+v", schema)
	}
	ks := schema[0]
	if ks.Keyword != "WithSchema" || ks.Format != "xml" || ks.TTL != time.Second {
		t.Errorf("ks = %+v", ks)
	}
	if ks.Degradation != "exponential(1s)" {
		t.Errorf("Degradation = %q", ks.Degradation)
	}
	if len(ks.Attributes) != 1 || ks.Attributes[0].Name != "a" {
		t.Errorf("Attributes = %+v", ks.Attributes)
	}
	if schema[1].Degradation != "" || len(schema[1].Attributes) != 0 {
		t.Errorf("plain schema = %+v", schema[1])
	}
}

func TestReportEntries(t *testing.T) {
	reports := []Report{{
		Keyword: "Memory",
		Attrs:   Attributes{{Name: "total", Value: "1024"}},
	}}
	entries := ReportEntries("hot.anl.gov", reports)
	if len(entries) != 1 {
		t.Fatal("no entries")
	}
	e := entries[0]
	if e.DN != "kw=Memory, resource=hot.anl.gov, o=grid" {
		t.Errorf("DN = %q", e.DN)
	}
	if v, _ := e.Get("objectclass"); v != ObjectClass {
		t.Errorf("objectclass = %q", v)
	}
	if v, _ := e.Get("Memory:total"); v != "1024" {
		t.Errorf("Memory:total = %q", v)
	}
}

func TestRegisteredCacheStats(t *testing.T) {
	reg := NewRegistry(nil)
	g := reg.Register(&StaticProvider{KeywordName: "K"}, RegisterOptions{TTL: time.Hour})
	ctx := context.Background()
	if _, err := g.Get(ctx, cache.Cached, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Get(ctx, cache.Cached, 0); err != nil {
		t.Fatal(err)
	}
	st := g.CacheStats()
	if st.Execs != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v", st)
	}
}
