// Package provider implements the information-provider framework of paper
// §6.2: the SystemInformation interface, the three information sources the
// paper names — (a) system commands via runtime exec, (b) runtime
// introspection (load, memory, disk), (c) files such as the Linux proc
// file system — and a keyword registry with schema reflection (§6.4).
//
// A Provider produces raw attributes; Register binds it to a cache entry
// with TTL, delay, degradation, and performance tracking, yielding a
// Registered that satisfies the paper's SystemInformation interface
// (querystate, updatestate, ttl, validity, setdelay, format,
// getaverageupdatetime).
package provider

import (
	"context"
	"fmt"
	"strings"
	"time"

	"infogram/internal/cache"
	"infogram/internal/ldif"
	"infogram/internal/metrics"
	"infogram/internal/quality"
)

// Attr is one attribute produced by a provider.
type Attr struct {
	Name  string
	Value string
}

// Attributes is an ordered attribute list; order is preserved into LDIF
// and XML output.
type Attributes []Attr

// Get returns the first value of name (case-insensitive).
func (as Attributes) Get(name string) (string, bool) {
	for _, a := range as {
		if strings.EqualFold(a.Name, name) {
			return a.Value, true
		}
	}
	return "", false
}

// Namespaced returns the attributes with the keyword namespace prefix the
// paper specifies: "the attribute total in the Memory information provider
// would be referred to as Memory:total".
func (as Attributes) Namespaced(keyword string) Attributes {
	out := make(Attributes, len(as))
	for i, a := range as {
		out[i] = Attr{Name: keyword + ":" + a.Name, Value: a.Value}
	}
	return out
}

// LDIF converts the attributes to LDIF attrs.
func (as Attributes) LDIF() []ldif.Attr {
	out := make([]ldif.Attr, len(as))
	for i, a := range as {
		out[i] = ldif.Attr{Name: a.Name, Value: a.Value}
	}
	return out
}

// Provider is a raw information source for one keyword.
type Provider interface {
	// Keyword identifies the provider in configuration and queries.
	Keyword() string
	// Fetch obtains a fresh attribute set. It corresponds to the actual
	// work behind the paper's updateState.
	Fetch(ctx context.Context) (Attributes, error)
	// Source describes where the information comes from, for reflection
	// output (e.g. "exec:/sbin/sysinfo.exe -mem").
	Source() string
}

// AttrSchema describes one attribute for reflection.
type AttrSchema struct {
	Name string
	Type string // "string", "int", "float", "duration"
	Doc  string
}

// SchemaProvider is optionally implemented by providers that can describe
// their attributes ahead of time; reflection output includes them.
type SchemaProvider interface {
	Provider
	AttrSchemas() []AttrSchema
}

// SystemInformation is the Go rendering of the paper's Java interface:
//
//	class SystemInformation interface {
//	    String getkeyword();         Object querystate();
//	    Object updatestate();        Time ttl();
//	    int validity();              void setdelay(Time);
//	    String setformat(Format);    Time getaverageupdatetime();
//	}
type SystemInformation interface {
	Keyword() string
	// QueryState is non-blocking and returns valid information only when
	// it has been queried before and the TTL has not expired; otherwise
	// it returns an error (the paper's exception).
	QueryState() (Attributes, error)
	// UpdateState blocks, refreshes the information, and returns it,
	// coalescing concurrent updates.
	UpdateState(ctx context.Context) (Attributes, error)
	TTL() time.Duration
	// Validity returns the current quality score of the cached value in
	// percent (the paper's int validity()).
	Validity() quality.Score
	SetDelay(d time.Duration)
	// Format returns the provider's preferred output format name.
	Format() string
	AverageUpdateTime() metrics.Stats
}

// Registered binds a Provider to its cache entry and statistics; it is the
// unit the registry stores per keyword and implements SystemInformation.
type Registered struct {
	provider Provider
	entry    *cache.Entry
	series   *metrics.Series
	ttl      time.Duration
	degrade  quality.Degradation
	format   string
}

var _ SystemInformation = (*Registered)(nil)

// Keyword returns the provider keyword.
func (g *Registered) Keyword() string { return g.provider.Keyword() }

// Source returns the provider source description.
func (g *Registered) Source() string { return g.provider.Source() }

// TTL returns the configured lifetime.
func (g *Registered) TTL() time.Duration { return g.ttl }

// Format returns the preferred output format ("ldif" by default).
func (g *Registered) Format() string { return g.format }

// SetDelay sets the minimum inter-execution delay.
func (g *Registered) SetDelay(d time.Duration) { g.entry.SetDelay(d) }

// AverageUpdateTime returns the running execution-time statistics
// (the paper's getaverageupdatetime, extended with the stddev §6.5 needs).
func (g *Registered) AverageUpdateTime() metrics.Stats { return g.series.Snapshot() }

// CacheStats exposes the underlying cache counters for experiments.
func (g *Registered) CacheStats() cache.Stats { return g.entry.Stats() }

// Degradation returns the attached degradation function, or nil.
func (g *Registered) Degradation() quality.Degradation { return g.degrade }

// QueryState implements the non-blocking read.
func (g *Registered) QueryState() (Attributes, error) {
	r, err := g.entry.Query()
	if err != nil {
		return nil, err
	}
	return r.Value.(Attributes), nil
}

// UpdateState implements the blocking refresh.
func (g *Registered) UpdateState(ctx context.Context) (Attributes, error) {
	r, err := g.entry.Update(ctx)
	if err != nil {
		return nil, err
	}
	return r.Value.(Attributes), nil
}

// Validity returns the quality score of the cached value now; 0 when the
// value has never been fetched.
func (g *Registered) Validity() quality.Score {
	r, err := g.entry.Query()
	if err == cache.ErrNeverFetched {
		return 0
	}
	return r.Quality
}

// StaleReport packages the entry's last stored value regardless of TTL,
// with Result.Stale marking a lapsed one. It never executes the provider —
// it is the fallback CollectDegraded reaches for when an execution just
// failed, preferring marked stale data over a hole in the answer. The
// second result is false when the provider has never produced a value.
func (g *Registered) StaleReport() (Report, bool) {
	r, ok := g.entry.StaleResult()
	if !ok {
		return Report{}, false
	}
	return Report{Keyword: g.Keyword(), Attrs: r.Value.(Attributes), Result: r}, true
}

// Report is one keyword's query result, ready for rendering.
type Report struct {
	Keyword string
	Attrs   Attributes
	Result  cache.Result
}

// Get reads through the cache with the given mode and threshold and
// packages a Report.
func (g *Registered) Get(ctx context.Context, mode cache.Mode, threshold quality.Score) (Report, error) {
	r, err := g.entry.Get(ctx, mode, threshold)
	if err != nil {
		return Report{}, fmt.Errorf("provider %q: %w", g.Keyword(), err)
	}
	return Report{Keyword: g.Keyword(), Attrs: r.Value.(Attributes), Result: r}, nil
}
