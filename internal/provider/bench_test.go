package provider

import (
	"context"
	"fmt"
	"testing"
	"time"

	"infogram/internal/cache"
)

// benchRegistry builds n TTL-0 providers that each cost fetchCost to
// execute, the shape of a Table-1 exec-per-request keyword.
func benchRegistry(n int, fetchCost time.Duration) *Registry {
	reg := NewRegistry(nil)
	for i := 0; i < n; i++ {
		kw := fmt.Sprintf("Key%d", i)
		reg.Register(NewFuncProvider(kw, func(ctx context.Context) (Attributes, error) {
			select {
			case <-time.After(fetchCost):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return Attributes{{Name: "v", Value: "1"}}, nil
		}), RegisterOptions{})
	}
	return reg
}

// BenchmarkCollectSerialVsParallel is the tentpole's acceptance measure:
// 8 providers at a simulated 5ms fetch each. Serial collection pays the
// sum (~40ms); the fan-out pays roughly the max (~5ms).
func BenchmarkCollectSerialVsParallel(b *testing.B) {
	const providers = 8
	const fetchCost = 5 * time.Millisecond
	for _, bc := range []struct {
		name        string
		parallelism int
	}{
		{"serial", 1},
		{"parallel", 0}, // GOMAXPROCS-scaled default
	} {
		b.Run(bc.name, func(b *testing.B) {
			reg := benchRegistry(providers, fetchCost)
			reg.SetParallelism(bc.parallelism)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := reg.Collect(context.Background(), nil, cache.Cached, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCollectDegradedParallel measures the degraded path the server
// runs under -provider-timeout, fan-out included.
func BenchmarkCollectDegradedParallel(b *testing.B) {
	reg := benchRegistry(8, 5*time.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := reg.CollectDegraded(context.Background(), nil, cache.Cached, 0, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}
