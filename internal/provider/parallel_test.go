package provider

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"infogram/internal/cache"
	"infogram/internal/faultinject"
	"infogram/internal/telemetry"
)

// sleepProvider returns a TTL-0 provider that sleeps d per fetch and
// counts concurrent executions into inflight/maxInflight.
func sleepProvider(kw string, d time.Duration, inflight, maxInflight *atomic.Int64) *FuncProvider {
	return NewFuncProvider(kw, func(ctx context.Context) (Attributes, error) {
		if inflight != nil {
			n := inflight.Add(1)
			for {
				m := maxInflight.Load()
				if n <= m || maxInflight.CompareAndSwap(m, n) {
					break
				}
			}
			defer inflight.Add(-1)
		}
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return Attributes{{Name: "kw", Value: kw}}, nil
	})
}

func TestParallelismKnob(t *testing.T) {
	reg := NewRegistry(nil)
	if got, want := reg.Parallelism(), DefaultParallelism(); got != want {
		t.Fatalf("default Parallelism = %d; want %d", got, want)
	}
	reg.SetParallelism(3)
	if got := reg.Parallelism(); got != 3 {
		t.Fatalf("Parallelism = %d; want 3", got)
	}
	reg.SetParallelism(-1)
	if got, want := reg.Parallelism(), DefaultParallelism(); got != want {
		t.Fatalf("Parallelism after reset = %d; want %d", got, want)
	}
}

// Parallel Collect must return reports in request order even when
// providers finish in arbitrary order.
func TestCollectParallelOrderPreserved(t *testing.T) {
	reg := NewRegistry(nil)
	const n = 12
	for i := 0; i < n; i++ {
		// Later keywords sleep less, so completion order inverts request
		// order — the strongest order-scrambling a fan-out can see.
		d := time.Duration(n-i) * 2 * time.Millisecond
		reg.Register(sleepProvider(fmt.Sprintf("Key%02d", i), d, nil, nil), RegisterOptions{})
	}
	want := make([]string, 0, n)
	for i := n - 1; i >= 0; i-- { // request in reverse registration order
		want = append(want, fmt.Sprintf("Key%02d", i))
	}
	reports, err := reg.Collect(context.Background(), want, cache.Cached, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != n {
		t.Fatalf("got %d reports; want %d", len(reports), n)
	}
	for i, rep := range reports {
		if rep.Keyword != want[i] {
			t.Fatalf("reports[%d] = %q; want %q (full order %v)", i, rep.Keyword, want[i], reports)
		}
	}
}

// The fan-out must actually overlap provider retrievals, and stay inside
// the configured worker bound.
func TestCollectParallelOverlapsWithinBound(t *testing.T) {
	var inflight, maxInflight atomic.Int64
	reg := NewRegistry(nil)
	const n = 8
	for i := 0; i < n; i++ {
		reg.Register(sleepProvider(fmt.Sprintf("Key%d", i), 50*time.Millisecond, &inflight, &maxInflight), RegisterOptions{})
	}
	reg.SetParallelism(4)
	start := time.Now()
	if _, err := reg.Collect(context.Background(), nil, cache.Cached, 0); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// Serial would be ≥ 400ms; four workers over eight 50ms fetches are
	// ~100ms. Allow generous scheduler slack.
	if elapsed > 300*time.Millisecond {
		t.Errorf("collect took %v; fan-out is not overlapping provider fetches", elapsed)
	}
	if got := maxInflight.Load(); got < 2 {
		t.Errorf("max concurrent fetches = %d; want ≥ 2", got)
	}
	if got := maxInflight.Load(); got > 4 {
		t.Errorf("max concurrent fetches = %d; bound of 4 violated", got)
	}
}

// Degraded fan-out: failures and timeouts become markers, reports and
// degraded lists keep request order, and a hung provider costs the query
// one perTimeout — not a serial queue behind every healthy keyword.
func TestCollectDegradedParallelMarkersAndOrder(t *testing.T) {
	boom := errors.New("sensor offline")
	reg := NewRegistry(nil)
	reg.Register(sleepProvider("Good1", time.Millisecond, nil, nil), RegisterOptions{})
	reg.Register(NewFuncProvider("Bad", func(ctx context.Context) (Attributes, error) {
		return nil, boom
	}), RegisterOptions{})
	reg.Register(sleepProvider("Good2", time.Millisecond, nil, nil), RegisterOptions{})
	reg.Register(NewFuncProvider("Hang", func(ctx context.Context) (Attributes, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}), RegisterOptions{})

	start := time.Now()
	reports, degraded, err := reg.CollectDegraded(context.Background(),
		[]string{"Good1", "Bad", "Good2", "Hang"}, cache.Cached, 0, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hung provider was not bounded: %v", elapsed)
	}
	if len(reports) != 2 || reports[0].Keyword != "Good1" || reports[1].Keyword != "Good2" {
		t.Fatalf("reports = %+v; want [Good1 Good2] in request order", reports)
	}
	if len(degraded) != 2 {
		t.Fatalf("degraded = %+v; want 2 markers", degraded)
	}
	if degraded[0].Keyword != "Bad" || !errors.Is(degraded[0].Err, boom) {
		t.Fatalf("degraded[0] = %+v; want Bad/%v", degraded[0], boom)
	}
	if degraded[1].Keyword != "Hang" || !errors.Is(degraded[1].Err, context.DeadlineExceeded) {
		t.Fatalf("degraded[1] = %+v; want Hang/deadline", degraded[1])
	}
}

// All-or-nothing Collect under parallel fan-out: any provider failure
// fails the request, and with several failures the reported error is the
// earliest failing keyword in request order — same as the serial path.
func TestCollectParallelAllOrNothingError(t *testing.T) {
	reg := NewRegistry(nil)
	reg.Register(sleepProvider("Good", time.Millisecond, nil, nil), RegisterOptions{})
	reg.Register(NewFuncProvider("Bad1", func(ctx context.Context) (Attributes, error) {
		return nil, errors.New("first failure")
	}), RegisterOptions{})
	reg.Register(NewFuncProvider("Bad2", func(ctx context.Context) (Attributes, error) {
		return nil, errors.New("second failure")
	}), RegisterOptions{})
	reports, err := reg.Collect(context.Background(), []string{"Good", "Bad1", "Bad2"}, cache.Cached, 0)
	if err == nil {
		t.Fatalf("Collect succeeded (%+v); want all-or-nothing failure", reports)
	}
	if !strings.Contains(err.Error(), "Bad1") {
		t.Fatalf("err = %v; want the request-order-first failure (Bad1)", err)
	}
	if reports != nil {
		t.Fatalf("reports = %+v; want nil on failure", reports)
	}
}

// An unknown keyword must fail before any provider executes (all-or-
// nothing requests have no side effects), in both collect variants.
func TestCollectParallelUnknownKeywordNoSideEffects(t *testing.T) {
	var execs atomic.Int64
	reg := NewRegistry(nil)
	reg.Register(NewFuncProvider("Known", func(ctx context.Context) (Attributes, error) {
		execs.Add(1)
		return Attributes{{Name: "v", Value: "1"}}, nil
	}), RegisterOptions{})
	if _, err := reg.Collect(context.Background(), []string{"Known", "Nope"}, cache.Cached, 0); err == nil {
		t.Fatal("Collect with unknown keyword succeeded")
	}
	if _, _, err := reg.CollectDegraded(context.Background(), []string{"Known", "Nope"}, cache.Cached, 0, 0); err == nil {
		t.Fatal("CollectDegraded with unknown keyword succeeded")
	}
	if n := execs.Load(); n != 0 {
		t.Fatalf("provider executed %d times despite unknown keyword in the request", n)
	}
}

// The fan-out telemetry: the in-flight gauge returns to zero and the
// latency histogram records one fan-out per parallel collect.
func TestCollectParallelTelemetry(t *testing.T) {
	tel := telemetry.NewRegistry()
	reg := NewRegistry(nil)
	for i := 0; i < 4; i++ {
		reg.Register(sleepProvider(fmt.Sprintf("Key%d", i), time.Millisecond, nil, nil), RegisterOptions{})
	}
	reg.SetTelemetry(tel)
	if _, err := reg.Collect(context.Background(), nil, cache.Cached, 0); err != nil {
		t.Fatal(err)
	}
	gauge := tel.Gauge("infogram_collect_parallel_inflight",
		"provider retrievals currently executing inside a parallel collect fan-out")
	if v := gauge.Value(); v != 0 {
		t.Errorf("in-flight gauge = %d after collect; want 0", v)
	}
	hist := tel.Histogram("infogram_collect_fanout_duration_seconds",
		"wall-clock latency of one multi-keyword parallel collect fan-out")
	if n := hist.Snapshot().Count; n != 1 {
		t.Errorf("fan-out histogram count = %d; want 1", n)
	}
}

// Chaos: provider.collect=error*1 fired mid-fan-out degrades exactly one
// keyword of a parallel degraded collect; the other seven arrive intact.
func TestCollectParallelChaosErrorMidFanout(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	reg := NewRegistry(nil)
	const n = 8
	for i := 0; i < n; i++ {
		reg.Register(sleepProvider(fmt.Sprintf("Key%d", i), 2*time.Millisecond, nil, nil), RegisterOptions{})
	}
	before := faultinject.Triggered(faultinject.ProviderCollect)
	faultinject.Arm(faultinject.ProviderCollect, faultinject.Action{Err: errors.New("injected mid-fanout"), Count: 1})
	reports, degraded, err := reg.CollectDegraded(context.Background(), nil, cache.Cached, 0, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(degraded) != 1 || !errors.Is(degraded[0].Err, faultinject.ErrInjected) {
		t.Fatalf("degraded = %+v; want exactly one injected-fault marker", degraded)
	}
	if len(reports) != n-1 {
		t.Fatalf("got %d reports; want %d", len(reports), n-1)
	}
	if got := faultinject.Triggered(faultinject.ProviderCollect) - before; got != 1 {
		t.Fatalf("failpoint fired %d times; want 1", got)
	}
}
