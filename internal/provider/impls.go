package provider

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// ExecProvider obtains information by running a system command, the
// paper's "(a) calls to a system command via the Java runtime exec". The
// command's stdout is parsed into attributes: lines of the form
// "name: value" or "name=value" become individual attributes; any other
// output is exposed under the "output" attribute, line-indexed when
// multi-line. This covers both structured tools (sysinfo-style) and plain
// ones like "date -u" or "/bin/ls" from Table 1.
type ExecProvider struct {
	KeywordName string
	Path        string   // executable path
	Args        []string // arguments
}

// NewExecProvider builds an ExecProvider from a Table-1-style command
// string ("/sbin/sysinfo.exe -mem"): the first field is the executable,
// the rest are arguments.
func NewExecProvider(keyword, command string) (*ExecProvider, error) {
	fields := strings.Fields(command)
	if len(fields) == 0 {
		return nil, fmt.Errorf("provider: empty command for keyword %q", keyword)
	}
	return &ExecProvider{KeywordName: keyword, Path: fields[0], Args: fields[1:]}, nil
}

// Keyword returns the provider keyword.
func (p *ExecProvider) Keyword() string { return p.KeywordName }

// Source describes the command line.
func (p *ExecProvider) Source() string {
	return "exec:" + strings.Join(append([]string{p.Path}, p.Args...), " ")
}

// Fetch runs the command and parses its output.
func (p *ExecProvider) Fetch(ctx context.Context) (Attributes, error) {
	cmd := exec.CommandContext(ctx, p.Path, p.Args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg != "" {
			return nil, fmt.Errorf("provider %q: %s: %w (%s)", p.KeywordName, p.Path, err, msg)
		}
		return nil, fmt.Errorf("provider %q: %s: %w", p.KeywordName, p.Path, err)
	}
	return ParseOutput(stdout.String()), nil
}

// ParseOutput converts command output to attributes. Structured lines
// ("name: value" or "name=value") map directly; unstructured output is
// exposed as output/output.N attributes.
func ParseOutput(out string) Attributes {
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	var attrs Attributes
	var plain []string
	for _, line := range lines {
		name, value, ok := splitStructured(line)
		if ok {
			attrs = append(attrs, Attr{Name: name, Value: value})
		} else if strings.TrimSpace(line) != "" {
			plain = append(plain, line)
		}
	}
	switch {
	case len(plain) == 1:
		attrs = append(attrs, Attr{Name: "output", Value: plain[0]})
	case len(plain) > 1:
		for i, l := range plain {
			attrs = append(attrs, Attr{Name: fmt.Sprintf("output.%d", i), Value: l})
		}
	}
	return attrs
}

// splitStructured splits "name: value" or "name=value" lines whose name is
// a single identifier-like token.
func splitStructured(line string) (name, value string, ok bool) {
	for _, sep := range []string{":", "="} {
		idx := strings.Index(line, sep)
		if idx <= 0 {
			continue
		}
		n := strings.TrimSpace(line[:idx])
		if n == "" || strings.ContainsAny(n, " \t") {
			continue
		}
		return n, strings.TrimSpace(line[idx+1:]), true
	}
	return "", "", false
}

// FuncProvider adapts an arbitrary function, the extension-by-interface
// path the paper highlights ("the integration of new information providers
// can be performed through the implementation of interfaces").
type FuncProvider struct {
	KeywordName string
	SourceName  string
	Fn          func(ctx context.Context) (Attributes, error)
	Schemas     []AttrSchema
}

// NewFuncProvider wraps fn as a provider.
func NewFuncProvider(keyword string, fn func(ctx context.Context) (Attributes, error)) *FuncProvider {
	return &FuncProvider{KeywordName: keyword, SourceName: "func", Fn: fn}
}

// Keyword returns the provider keyword.
func (p *FuncProvider) Keyword() string { return p.KeywordName }

// Source describes the provider.
func (p *FuncProvider) Source() string { return p.SourceName }

// Fetch invokes the wrapped function.
func (p *FuncProvider) Fetch(ctx context.Context) (Attributes, error) { return p.Fn(ctx) }

// AttrSchemas returns declared attribute schemas, if any.
func (p *FuncProvider) AttrSchemas() []AttrSchema { return p.Schemas }

// RuntimeProvider exposes process-runtime information, the paper's "(b) a
// query to a function exposing Java runtime information such as load,
// memory, or disk space" mapped onto the Go runtime.
type RuntimeProvider struct{}

// Keyword returns "Runtime".
func (RuntimeProvider) Keyword() string { return "Runtime" }

// Source describes the provider.
func (RuntimeProvider) Source() string { return "runtime" }

// Fetch reads runtime statistics.
func (RuntimeProvider) Fetch(context.Context) (Attributes, error) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	hostname, _ := os.Hostname()
	return Attributes{
		{Name: "hostname", Value: hostname},
		{Name: "os", Value: runtime.GOOS},
		{Name: "arch", Value: runtime.GOARCH},
		{Name: "cpus", Value: strconv.Itoa(runtime.NumCPU())},
		{Name: "goroutines", Value: strconv.Itoa(runtime.NumGoroutine())},
		{Name: "heapAlloc", Value: strconv.FormatUint(ms.HeapAlloc, 10)},
		{Name: "heapSys", Value: strconv.FormatUint(ms.HeapSys, 10)},
		{Name: "totalAlloc", Value: strconv.FormatUint(ms.TotalAlloc, 10)},
		{Name: "gcCycles", Value: strconv.FormatUint(uint64(ms.NumGC), 10)},
	}, nil
}

// AttrSchemas describes the runtime attributes.
func (RuntimeProvider) AttrSchemas() []AttrSchema {
	return []AttrSchema{
		{Name: "hostname", Type: "string", Doc: "host name of the resource"},
		{Name: "os", Type: "string", Doc: "operating system"},
		{Name: "arch", Type: "string", Doc: "hardware architecture"},
		{Name: "cpus", Type: "int", Doc: "logical CPU count"},
		{Name: "goroutines", Type: "int", Doc: "live goroutines in the service"},
		{Name: "heapAlloc", Type: "int", Doc: "bytes of allocated heap"},
		{Name: "heapSys", Type: "int", Doc: "bytes of heap from the OS"},
		{Name: "totalAlloc", Type: "int", Doc: "cumulative allocated bytes"},
		{Name: "gcCycles", Type: "int", Doc: "completed GC cycles"},
	}
}

// FileProvider reads a file and parses it into attributes, the paper's
// "(c) a read function from a file that is used by an information
// provider. A good example ... is the Linux proc file system."
type FileProvider struct {
	KeywordName string
	Path        string
	// Parse optionally overrides output parsing; defaults to ParseOutput.
	Parse func(content string) (Attributes, error)
}

// NewFileProvider reads path under the given keyword.
func NewFileProvider(keyword, path string) *FileProvider {
	return &FileProvider{KeywordName: keyword, Path: path}
}

// Keyword returns the provider keyword.
func (p *FileProvider) Keyword() string { return p.KeywordName }

// Source describes the file path.
func (p *FileProvider) Source() string { return "file:" + p.Path }

// Fetch reads and parses the file.
func (p *FileProvider) Fetch(context.Context) (Attributes, error) {
	b, err := os.ReadFile(p.Path)
	if err != nil {
		return nil, fmt.Errorf("provider %q: %w", p.KeywordName, err)
	}
	if p.Parse != nil {
		return p.Parse(string(b))
	}
	return ParseOutput(string(b)), nil
}

// StaticProvider returns fixed attributes; useful for resource identity
// records and tests.
type StaticProvider struct {
	KeywordName string
	Values      Attributes
}

// Keyword returns the provider keyword.
func (p *StaticProvider) Keyword() string { return p.KeywordName }

// Source describes the provider.
func (p *StaticProvider) Source() string { return "static" }

// Fetch returns a copy of the fixed attributes.
func (p *StaticProvider) Fetch(context.Context) (Attributes, error) {
	out := make(Attributes, len(p.Values))
	copy(out, p.Values)
	return out, nil
}
