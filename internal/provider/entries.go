package provider

import (
	"fmt"

	"infogram/internal/ldif"
)

// ObjectClass is the objectclass attribute value stamped on every
// information entry, letting MDS-style filters select provider records.
const ObjectClass = "InfoGramProvider"

// ReportEntries converts provider reports to directory entries: one entry
// per keyword with namespaced attributes ("Memory:total"), under a DN of
// the MDS shape "kw=<keyword>, resource=<name>, o=grid". Both the MDS GRIS
// and the InfoGram service render query results through this function,
// which is what makes InfoGram's information "easily ... integrated into
// the Globus MDS information service architecture" (paper §6.5).
func ReportEntries(resource string, reports []Report) []ldif.Entry {
	out := make([]ldif.Entry, 0, len(reports))
	for _, rep := range reports {
		e := ldif.Entry{DN: fmt.Sprintf("kw=%s, resource=%s, o=grid", rep.Keyword, resource)}
		e.Add("objectclass", ObjectClass)
		e.Add("kw", rep.Keyword)
		e.Add("resource", resource)
		for _, a := range rep.Attrs.Namespaced(rep.Keyword) {
			e.Add(a.Name, a.Value)
		}
		out = append(out, e)
	}
	return out
}
