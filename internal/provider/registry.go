package provider

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"infogram/internal/cache"
	"infogram/internal/clock"
	"infogram/internal/faultinject"
	"infogram/internal/metrics"
	"infogram/internal/quality"
	"infogram/internal/telemetry"
)

// UnknownKeywordError reports a query naming a keyword no provider
// serves. It is a typed error so response caches can recognize the
// negative result and cache it under a short TTL.
type UnknownKeywordError struct {
	Keyword string
}

func (e *UnknownKeywordError) Error() string {
	return fmt.Sprintf("provider: unknown keyword %q", e.Keyword)
}

// RegisterOptions configures a provider registration.
type RegisterOptions struct {
	// TTL is the cached lifetime of the keyword's information; 0 means
	// execute on every request (Table 1 semantics).
	TTL time.Duration
	// Delay is the minimum interval between provider executions.
	Delay time.Duration
	// Degrade optionally attaches a degradation function.
	Degrade quality.Degradation
	// Drift optionally measures relative change for self-correction.
	Drift func(old, new any) float64
	// Format is the preferred output format; "ldif" when empty.
	Format string
	// Clock defaults to the system clock.
	Clock clock.Clock
}

// Registry holds the key information providers of one service instance,
// keyed by keyword (case-insensitive), in registration order. It is the
// "system monitor service" of Figure 3: it controls initialization and
// caching of the results requested by clients.
type Registry struct {
	mu        sync.RWMutex
	order     []string
	byKeyword map[string]*Registered
	catalogue *metrics.Catalogue
	clk       clock.Clock
	tel       *telemetry.Registry

	// par bounds the collect fan-out worker pool; 0 selects
	// DefaultParallelism.
	par atomic.Int64

	// gen counts membership changes (Register/Unregister). Response
	// caches embed it in their keys, so a re-registration makes every
	// blob cached under the old membership unreachable in O(1) — stale
	// entries age out of the byte cache instead of being scanned for.
	gen atomic.Uint64

	// fanoutInflight / fanoutLatency are resolved once in SetTelemetry and
	// read under mu on the collect path.
	fanoutInflight *telemetry.Gauge
	fanoutLatency  *telemetry.Histogram
	// staleServed counts degraded collects answered with a marked stale
	// value instead of a hole. Nil-safe.
	staleServed *telemetry.Counter
}

// DefaultParallelism is the fan-out bound used when none is configured.
// Providers block on exec, file, and network I/O rather than CPU, so the
// pool is scaled a factor above GOMAXPROCS.
func DefaultParallelism() int {
	n := 4 * runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	return n
}

// Parallelism returns the effective collect fan-out bound.
func (r *Registry) Parallelism() int {
	if n := r.par.Load(); n > 0 {
		return int(n)
	}
	return DefaultParallelism()
}

// SetParallelism bounds the worker pool used to fan keyword retrievals
// out across providers. 1 forces serial collection; values <= 0 restore
// DefaultParallelism. Safe to call while collects are running — in-flight
// fan-outs keep the bound they started with.
func (r *Registry) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	r.par.Store(int64(n))
}

// NewRegistry returns an empty registry using the given clock (nil for the
// system clock).
func NewRegistry(clk clock.Clock) *Registry {
	if clk == nil {
		clk = clock.System
	}
	return &Registry{
		byKeyword: make(map[string]*Registered),
		catalogue: metrics.NewCatalogue(),
		clk:       clk,
	}
}

// Catalogue returns the performance catalogue shared by all providers.
func (r *Registry) Catalogue() *metrics.Catalogue { return r.catalogue }

// SetTelemetry attaches a telemetry registry: every provider's cache entry
// — already registered or registered later — feeds per-keyword hit, miss,
// and eviction counters into it. The owning service calls this once at
// construction; providers registered earlier (e.g. from a configuration
// file loaded before the service existed) are retrofitted.
func (r *Registry) SetTelemetry(tel *telemetry.Registry) {
	r.mu.Lock()
	r.tel = tel
	r.fanoutInflight = tel.Gauge("infogram_collect_parallel_inflight",
		"provider retrievals currently executing inside a parallel collect fan-out")
	r.fanoutLatency = tel.Histogram("infogram_collect_fanout_duration_seconds",
		"wall-clock latency of one multi-keyword parallel collect fan-out")
	r.staleServed = tel.Counter("infogram_stale_served_total",
		"degraded collects answered with the last known value, marked stale")
	regs := make([]*Registered, 0, len(r.order))
	for _, k := range r.order {
		regs = append(regs, r.byKeyword[k])
	}
	r.mu.Unlock()
	for _, g := range regs {
		g.entry.SetTelemetry(cacheCounters(tel, g.Keyword()))
	}
}

// cacheCounters builds the per-keyword cache counter set.
func cacheCounters(tel *telemetry.Registry, keyword string) cache.Counters {
	if tel == nil {
		return cache.Counters{}
	}
	kw := telemetry.Label{Key: "keyword", Value: strings.ToLower(keyword)}
	return cache.Counters{
		Hits:      tel.Counter("infogram_cache_hits_total", "information reads served from a provider cache", kw),
		Misses:    tel.Counter("infogram_cache_misses_total", "information reads that executed the provider", kw),
		Evictions: tel.Counter("infogram_cache_evictions_total", "cached provider values superseded by a fresh execution", kw),
	}
}

// Register binds p under its keyword. Re-registering a keyword replaces
// the previous provider (used by configuration hot-reload).
func (r *Registry) Register(p Provider, opts RegisterOptions) *Registered {
	if opts.Clock == nil {
		opts.Clock = r.clk
	}
	if opts.Format == "" {
		opts.Format = "ldif"
	}
	series := &metrics.Series{}
	reg := &Registered{
		provider: p,
		series:   series,
		ttl:      opts.TTL,
		degrade:  opts.Degrade,
		format:   opts.Format,
	}
	r.mu.RLock()
	tel := r.tel
	r.mu.RUnlock()
	reg.entry = cache.NewEntry(cache.Options{
		TTL:       opts.TTL,
		Delay:     opts.Delay,
		Degrade:   opts.Degrade,
		Drift:     opts.Drift,
		Series:    series,
		Telemetry: cacheCounters(tel, p.Keyword()),
		Clock:     opts.Clock,
	}, func(ctx context.Context) (any, error) {
		attrs, err := p.Fetch(ctx)
		if err != nil {
			return nil, err
		}
		return attrs, nil
	})

	key := strings.ToLower(p.Keyword())
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.byKeyword[key]; !exists {
		r.order = append(r.order, key)
	}
	r.byKeyword[key] = reg
	r.gen.Add(1)
	return reg
}

// Generation counts membership changes: it advances on every Register
// and successful Unregister. Response caches key blobs by generation so
// provider churn invalidates them without scanning.
func (r *Registry) Generation() uint64 { return r.gen.Load() }

// Unregister removes a keyword; it reports whether it existed.
func (r *Registry) Unregister(keyword string) bool {
	key := strings.ToLower(keyword)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byKeyword[key]; !ok {
		return false
	}
	delete(r.byKeyword, key)
	for i, k := range r.order {
		if k == key {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	r.gen.Add(1)
	return true
}

// Lookup finds the registration for keyword (case-insensitive).
func (r *Registry) Lookup(keyword string) (*Registered, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	g, ok := r.byKeyword[strings.ToLower(keyword)]
	return g, ok
}

// Keywords returns the registered keywords in registration order, using
// each provider's declared spelling.
func (r *Registry) Keywords() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.order))
	for _, k := range r.order {
		out = append(out, r.byKeyword[k].Keyword())
	}
	return out
}

// Len returns the number of registered providers.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byKeyword)
}

// Collect queries the named keywords (or all, when keywords is empty)
// through the cache with the given mode and threshold. Retrieval fans out
// across a worker pool bounded by SetParallelism, so slow providers
// overlap instead of queueing; results are still in request order.
// Querying an unknown keyword fails the whole request, the all-or-nothing
// semantics of §6.3 — as does any provider failure, in which case the
// error of the earliest failing keyword in request order is returned.
func (r *Registry) Collect(ctx context.Context, keywords []string, mode cache.Mode, threshold quality.Score) ([]Report, error) {
	regs, err := r.resolve(keywords)
	if err != nil {
		return nil, err
	}
	outs := r.collectAll(ctx, regs, mode, threshold, 0)
	reports := make([]Report, len(outs))
	for i, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		reports[i] = o.rep
	}
	return reports, nil
}

// resolve maps keywords (or all registered keywords, when empty) to their
// registrations in request order. Unknown keywords fail before any
// provider executes, so an all-or-nothing request has no side effects.
func (r *Registry) resolve(keywords []string) ([]*Registered, error) {
	if len(keywords) == 0 {
		keywords = r.Keywords()
	}
	regs := make([]*Registered, len(keywords))
	for i, kw := range keywords {
		g, ok := r.Lookup(kw)
		if !ok {
			return nil, &UnknownKeywordError{Keyword: kw}
		}
		regs[i] = g
	}
	return regs, nil
}

// collectOutcome is one keyword's fan-out result slot.
type collectOutcome struct {
	rep Report
	err error
}

// collectAll retrieves every registration, in parallel when the
// configured bound and the request size allow it. outs[i] always
// corresponds to regs[i], which is what preserves request order in the
// callers. Cache single-flight coalescing makes concurrent Entry.Get on
// the same keyword safe, so no extra per-keyword locking is needed here.
func (r *Registry) collectAll(ctx context.Context, regs []*Registered, mode cache.Mode, threshold quality.Score, perTimeout time.Duration) []collectOutcome {
	outs := make([]collectOutcome, len(regs))
	workers := r.Parallelism()
	if workers > len(regs) {
		workers = len(regs)
	}
	if workers <= 1 {
		for i, g := range regs {
			outs[i].rep, outs[i].err = collectOne(ctx, g, mode, threshold, perTimeout)
		}
		return outs
	}

	r.mu.RLock()
	inflight, latency := r.fanoutInflight, r.fanoutLatency
	r.mu.RUnlock()
	start := r.clk.Now()

	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				inflight.Inc()
				outs[i].rep, outs[i].err = collectOne(ctx, regs[i], mode, threshold, perTimeout)
				inflight.Dec()
			}
		}()
	}
	for i := range regs {
		next <- i
	}
	close(next)
	wg.Wait()
	latency.Observe(r.clk.Since(start))
	return outs
}

// DegradedKeyword records a keyword whose provider failed or timed out
// during a degraded collect.
type DegradedKeyword struct {
	Keyword string
	Err     error
	// Stale is true when a previously cached value was served in the
	// keyword's place, marked stale, instead of omitting it entirely.
	Stale bool
}

// CollectDegraded is Collect with partial-result degradation: each
// keyword's retrieval is bounded by perTimeout (0 means unbounded, though
// the caller's context still applies) and a provider that fails or blows
// its timeout becomes a DegradedKeyword entry instead of failing the whole
// request. Retrieval fans out like Collect's, so one hung provider costs
// the query perTimeout once instead of serializing behind every healthy
// keyword; both the reports and the degraded list stay in request order.
// Unknown keywords remain all-or-nothing errors — they indicate a
// malformed query, not a degraded resource.
func (r *Registry) CollectDegraded(ctx context.Context, keywords []string, mode cache.Mode, threshold quality.Score, perTimeout time.Duration) ([]Report, []DegradedKeyword, error) {
	regs, err := r.resolve(keywords)
	if err != nil {
		return nil, nil, err
	}
	outs := r.collectAll(ctx, regs, mode, threshold, perTimeout)
	reports := make([]Report, 0, len(outs))
	var degraded []DegradedKeyword
	for i, o := range outs {
		if o.err != nil {
			// Provider outage: prefer the last known value, marked stale,
			// over a hole in the answer. The keyword still appears in the
			// degraded list (so the response says why the data is old) and
			// the degraded status keeps the answer out of response caches.
			if rep, ok := regs[i].StaleReport(); ok {
				reports = append(reports, rep)
				degraded = append(degraded, DegradedKeyword{Keyword: regs[i].Keyword(), Err: o.err, Stale: true})
				r.staleServed.Inc()
				continue
			}
			degraded = append(degraded, DegradedKeyword{Keyword: regs[i].Keyword(), Err: o.err})
			continue
		}
		reports = append(reports, o.rep)
	}
	return reports, degraded, nil
}

// collectOne retrieves one keyword under its per-provider deadline. A
// traced request records each provider as a "provider.collect" span, so
// the fan-out's per-keyword costs decompose in the trace tree.
func collectOne(ctx context.Context, g *Registered, mode cache.Mode, threshold quality.Score, perTimeout time.Duration) (Report, error) {
	ctx, sp := telemetry.StartSpan(ctx, "provider.collect")
	sp.SetAttr("keyword", g.Keyword())
	rep, err := collectProvider(ctx, g, mode, threshold, perTimeout)
	if err != nil {
		sp.Fail(err.Error())
	}
	sp.End()
	return rep, err
}

func collectProvider(ctx context.Context, g *Registered, mode cache.Mode, threshold quality.Score, perTimeout time.Duration) (Report, error) {
	if perTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, perTimeout)
		defer cancel()
	}
	if _, err := faultinject.Eval(ctx, faultinject.ProviderCollect); err != nil {
		return Report{}, err
	}
	return g.Get(ctx, mode, threshold)
}

// KeywordSchema is the reflection record for one keyword (paper §6.4: the
// schema query "returns a hierarchical schema that contains all objects
// associated with the keywords and lists properties of their attributes").
type KeywordSchema struct {
	Keyword     string
	Source      string
	TTL         time.Duration
	Format      string
	Degradation string
	Attributes  []AttrSchema
	// Performance is included when the provider has been executed, so
	// clients can see expected retrieval cost.
	Performance metrics.Stats
}

// Schema returns the reflection records for all keywords in registration
// order.
func (r *Registry) Schema() []KeywordSchema {
	r.mu.RLock()
	regs := make([]*Registered, 0, len(r.order))
	for _, k := range r.order {
		regs = append(regs, r.byKeyword[k])
	}
	r.mu.RUnlock()

	out := make([]KeywordSchema, 0, len(regs))
	for _, g := range regs {
		ks := KeywordSchema{
			Keyword:     g.Keyword(),
			Source:      g.Source(),
			TTL:         g.TTL(),
			Format:      g.Format(),
			Performance: g.AverageUpdateTime(),
		}
		if g.degrade != nil {
			ks.Degradation = g.degrade.Name()
		}
		if sp, ok := g.provider.(SchemaProvider); ok {
			ks.Attributes = sp.AttrSchemas()
		}
		out = append(out, ks)
	}
	return out
}
