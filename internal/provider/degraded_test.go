package provider

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"infogram/internal/cache"
)

// newDegradedRegistry builds a registry with one healthy provider and one
// broken one.
func newDegradedRegistry(bad Provider) *Registry {
	reg := NewRegistry(nil)
	reg.Register(&StaticProvider{
		KeywordName: "Good",
		Values:      Attributes{{Name: "v", Value: "1"}},
	}, RegisterOptions{TTL: time.Minute})
	reg.Register(bad, RegisterOptions{})
	return reg
}

func TestCollectDegradedPartialOnProviderError(t *testing.T) {
	boom := errors.New("sensor offline")
	reg := newDegradedRegistry(NewFuncProvider("Bad", func(ctx context.Context) (Attributes, error) {
		return nil, boom
	}))
	reports, degraded, err := reg.CollectDegraded(context.Background(),
		[]string{"Good", "Bad"}, cache.Cached, 0, 0)
	if err != nil {
		t.Fatalf("CollectDegraded returned a fatal error: %v", err)
	}
	if len(reports) != 1 || reports[0].Keyword != "Good" {
		t.Fatalf("reports = %+v; want just Good", reports)
	}
	if len(degraded) != 1 || degraded[0].Keyword != "Bad" || !errors.Is(degraded[0].Err, boom) {
		t.Fatalf("degraded = %+v", degraded)
	}
}

func TestCollectDegradedTimeoutBoundsSlowProvider(t *testing.T) {
	reg := newDegradedRegistry(NewFuncProvider("Bad", func(ctx context.Context) (Attributes, error) {
		<-ctx.Done() // a hung provider honours only cancellation
		return nil, ctx.Err()
	}))
	start := time.Now()
	reports, degraded, err := reg.CollectDegraded(context.Background(),
		[]string{"Good", "Bad"}, cache.Cached, 0, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("per-provider timeout did not bound the hang: %v", elapsed)
	}
	if len(reports) != 1 {
		t.Fatalf("reports = %+v", reports)
	}
	if len(degraded) != 1 || !errors.Is(degraded[0].Err, context.DeadlineExceeded) {
		t.Fatalf("degraded = %+v; want deadline exceeded for Bad", degraded)
	}
}

func TestCollectDegradedUnknownKeywordStillFatal(t *testing.T) {
	reg := newDegradedRegistry(NewFuncProvider("Bad", func(ctx context.Context) (Attributes, error) {
		return nil, errors.New("x")
	}))
	_, _, err := reg.CollectDegraded(context.Background(),
		[]string{"Good", "Nope"}, cache.Cached, 0, 0)
	if err == nil || !strings.Contains(err.Error(), "unknown keyword") {
		t.Fatalf("err = %v; unknown keywords must fail the whole request", err)
	}
}

func TestCollectDegradedServesStaleDuringOutage(t *testing.T) {
	// A flaky provider: one good execution, then permanent failure.
	boom := errors.New("sensor offline")
	calls := 0
	reg := NewRegistry(nil)
	reg.Register(NewFuncProvider("Flaky", func(ctx context.Context) (Attributes, error) {
		calls++
		if calls > 1 {
			return nil, boom
		}
		return Attributes{{Name: "v", Value: "cached"}}, nil
	}), RegisterOptions{TTL: time.Nanosecond}) // expires immediately

	// First collect fills the entry.
	if _, _, err := reg.CollectDegraded(context.Background(), []string{"Flaky"}, cache.Cached, 0, 0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Microsecond) // let the nanosecond TTL lapse

	// The refill fails: the last value comes back marked stale instead of
	// the keyword being dropped.
	reports, degraded, err := reg.CollectDegraded(context.Background(), []string{"Flaky"}, cache.Cached, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].Keyword != "Flaky" {
		t.Fatalf("reports = %+v; want the stale Flaky value", reports)
	}
	if !reports[0].Result.Stale {
		t.Fatal("served value not marked stale")
	}
	if got := reports[0].Attrs[0].Value; got != "cached" {
		t.Fatalf("stale value = %q", got)
	}
	if len(degraded) != 1 || !degraded[0].Stale || !errors.Is(degraded[0].Err, boom) {
		t.Fatalf("degraded = %+v; want stale-marked entry with cause", degraded)
	}
}

func TestCollectDegradedNoStaleWithoutHistory(t *testing.T) {
	// A provider that has never succeeded has nothing to serve stale: the
	// keyword stays missing, exactly the old behavior.
	reg := newDegradedRegistry(NewFuncProvider("Bad", func(ctx context.Context) (Attributes, error) {
		return nil, errors.New("never worked")
	}))
	reports, degraded, err := reg.CollectDegraded(context.Background(),
		[]string{"Good", "Bad"}, cache.Cached, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].Keyword != "Good" {
		t.Fatalf("reports = %+v", reports)
	}
	if len(degraded) != 1 || degraded[0].Stale {
		t.Fatalf("degraded = %+v; want non-stale missing entry", degraded)
	}
}

func TestCollectDegradedAllHealthy(t *testing.T) {
	reg := NewRegistry(nil)
	reg.Register(&StaticProvider{KeywordName: "A", Values: Attributes{{Name: "v", Value: "1"}}},
		RegisterOptions{TTL: time.Minute})
	reg.Register(&StaticProvider{KeywordName: "B", Values: Attributes{{Name: "v", Value: "2"}}},
		RegisterOptions{TTL: time.Minute})
	reports, degraded, err := reg.CollectDegraded(context.Background(), nil, cache.Cached, 0, time.Second)
	if err != nil || len(degraded) != 0 {
		t.Fatalf("healthy registry degraded: %v %+v", err, degraded)
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %+v", reports)
	}
}
