package journal

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte("alpha"),
		{},
		bytes.Repeat([]byte{0xA5}, 4096),
		[]byte("omega"),
	}
	var buf []byte
	for _, p := range payloads {
		buf = AppendFrame(buf, p)
	}

	fr := NewFrameReader(bytes.NewReader(buf), 0)
	for i, want := range payloads {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("want io.EOF at clean end, got %v", err)
	}
	if fr.Offset() != int64(len(buf)) {
		t.Fatalf("offset %d, want %d", fr.Offset(), len(buf))
	}
}

func TestFrameBeginFinish(t *testing.T) {
	frame := BeginFrame(nil)
	frame = append(frame, "payload built in place"...)
	FinishFrame(frame)

	fr := NewFrameReader(bytes.NewReader(frame), 0)
	got, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "payload built in place" {
		t.Fatalf("got %q", got)
	}
}

func TestFrameTornTail(t *testing.T) {
	full := AppendFrame(AppendFrame(nil, []byte("first")), []byte("second"))
	// Cut at every prefix length that severs the second frame: partial
	// header and partial payload must both read as ErrTornFrame after the
	// intact first frame.
	firstLen := len(AppendFrame(nil, []byte("first")))
	for cut := firstLen + 1; cut < len(full); cut++ {
		fr := NewFrameReader(bytes.NewReader(full[:cut]), 0)
		if _, err := fr.Next(); err != nil {
			t.Fatalf("cut %d: first frame: %v", cut, err)
		}
		if _, err := fr.Next(); !errors.Is(err, ErrTornFrame) {
			t.Fatalf("cut %d: want ErrTornFrame, got %v", cut, err)
		}
	}
}

func TestFrameCorruption(t *testing.T) {
	frame := AppendFrame(nil, []byte("payload under test"))

	// Flip one payload bit: CRC mismatch.
	flipped := append([]byte(nil), frame...)
	flipped[frameHeader+3] ^= 0x01
	if _, err := NewFrameReader(bytes.NewReader(flipped), 0).Next(); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("payload flip: want ErrFrameCorrupt, got %v", err)
	}

	// Oversized declared length: rejected before allocation.
	huge := append([]byte(nil), frame...)
	huge[3] = 0xFF
	if _, err := NewFrameReader(bytes.NewReader(huge), 64).Next(); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("oversize length: want ErrFrameCorrupt, got %v", err)
	}
}
