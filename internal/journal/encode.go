package journal

import (
	"encoding/json"
	"strconv"
	"time"
)

// appendEntry appends e to dst as the JSON object encoding/json would
// produce (minus its HTML-safe escaping, which Unmarshal never required).
// The append path runs for every job submission and transition, and
// reflection-driven Marshal — mostly its time.Time formatting — dominated
// the hot-path profile; replay keeps using encoding/json, so the two
// encoders are held equivalent by TestAppendEntryMatchesEncodingJSON.
func appendEntry(dst []byte, e Entry) []byte {
	dst = append(dst, `{"k":`...)
	dst = strconv.AppendUint(dst, uint64(e.Kind), 10)
	dst = append(dst, `,"t":`...)
	dst = strconv.AppendInt(dst, e.Time, 10)
	dst = append(dst, `,"c":`...)
	dst = appendJSONString(dst, e.Contact)
	if e.Spec != "" {
		dst = append(dst, `,"spec":`...)
		dst = appendJSONString(dst, e.Spec)
	}
	if e.Owner != "" {
		dst = append(dst, `,"owner":`...)
		dst = appendJSONString(dst, e.Owner)
	}
	if e.Identity != "" {
		dst = append(dst, `,"ident":`...)
		dst = appendJSONString(dst, e.Identity)
	}
	if e.State != "" {
		dst = append(dst, `,"state":`...)
		dst = appendJSONString(dst, e.State)
	}
	if e.ExitCode != nil {
		dst = append(dst, `,"exit":`...)
		dst = strconv.AppendInt(dst, int64(*e.ExitCode), 10)
	}
	if e.Error != "" {
		dst = append(dst, `,"err":`...)
		dst = appendJSONString(dst, e.Error)
	}
	if e.Restarts != 0 {
		dst = append(dst, `,"restarts":`...)
		dst = strconv.AppendInt(dst, int64(e.Restarts), 10)
	}
	if e.Stdout != nil {
		dst = append(dst, `,"stdout":`...)
		dst = appendJSONString(dst, *e.Stdout)
	}
	if e.Stderr != nil {
		dst = append(dst, `,"stderr":`...)
		dst = appendJSONString(dst, *e.Stderr)
	}
	if e.Checkpoint != "" {
		dst = append(dst, `,"ckpt":`...)
		dst = appendJSONString(dst, e.Checkpoint)
	}
	return append(dst, '}')
}

// appendJobState appends js as the JSON object encoding/json would
// produce for a JobState. It runs once per job at terminal-state
// retirement and per live job at snapshot time; on small hosts the
// reflection marshal was a measurable slice of the per-job budget.
// TestAppendJobStateMatchesEncodingJSON holds the encoders equivalent.
func appendJobState(dst []byte, js *JobState) []byte {
	dst = append(dst, `{"contact":`...)
	dst = appendJSONString(dst, js.Contact)
	if js.Spec != "" {
		dst = append(dst, `,"spec":`...)
		dst = appendJSONString(dst, js.Spec)
	}
	if js.Owner != "" {
		dst = append(dst, `,"owner":`...)
		dst = appendJSONString(dst, js.Owner)
	}
	if js.Identity != "" {
		dst = append(dst, `,"identity":`...)
		dst = appendJSONString(dst, js.Identity)
	}
	dst = append(dst, `,"state":`...)
	dst = strconv.AppendInt(dst, int64(js.State), 10)
	if js.ExitCode != 0 {
		dst = append(dst, `,"exitCode":`...)
		dst = strconv.AppendInt(dst, int64(js.ExitCode), 10)
	}
	if js.Error != "" {
		dst = append(dst, `,"error":`...)
		dst = appendJSONString(dst, js.Error)
	}
	if js.Stdout != "" {
		dst = append(dst, `,"stdout":`...)
		dst = appendJSONString(dst, js.Stdout)
	}
	if js.Stderr != "" {
		dst = append(dst, `,"stderr":`...)
		dst = appendJSONString(dst, js.Stderr)
	}
	if js.Restarts != 0 {
		dst = append(dst, `,"restarts":`...)
		dst = strconv.AppendInt(dst, int64(js.Restarts), 10)
	}
	if js.Checkpoint != "" {
		dst = append(dst, `,"checkpoint":`...)
		dst = appendJSONString(dst, js.Checkpoint)
	}
	dst = append(dst, `,"submitted":"`...)
	dst = js.Submitted.AppendFormat(dst, time.RFC3339Nano)
	dst = append(dst, `","updated":"`...)
	dst = js.Updated.AppendFormat(dst, time.RFC3339Nano)
	return append(dst, '"', '}')
}

// appendJSONString appends s as a quoted JSON string. The fast path
// covers printable ASCII without quotes or backslashes — contacts, specs,
// and states in practice; anything else (control bytes, non-ASCII,
// escapes) takes encoding/json's encoder so the semantics, including
// invalid-UTF-8 replacement, stay identical.
func appendJSONString(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= 0x80 {
			b, _ := json.Marshal(s)
			return append(dst, b...)
		}
	}
	dst = append(dst, '"')
	dst = append(dst, s...)
	return append(dst, '"')
}
