// Package journal is the gatekeeper's durable job-state layer: a
// crash-safe write-ahead journal plus periodic snapshots, closing the gap
// the paper's phase-2 goal names ("improve the reliability of the job
// execution", §7). Every job submission and state transition is appended
// to the journal before the service acknowledges it, so a gatekeeper crash
// loses no accepted job: on restart the service replays the latest
// snapshot plus the journal tail, rebuilds its job table (terminal jobs
// keep their recorded output), and resubmits every non-terminal job
// through the scheduler, honoring the xRSL restart=N attempt budget
// (§6.1).
//
// On-disk layout under the state directory:
//
//	journal-00000000.seg   length+CRC32C framed records, JSON payloads
//	journal-00000001.seg   ...
//	snapshot.json          folded job state + the first uncovered segment
//
// Records are framed as a little-endian uint32 payload length, a uint32
// CRC32C (Castagnoli) of the payload, then the payload. A torn frame at
// the tail of the newest segment — the signature of a crash mid-append —
// is dropped so recovery proceeds from the intact prefix; a bad frame
// anywhere else is genuine corruption and fails recovery. Appends never
// continue into a replayed segment: each process epoch opens a fresh one,
// so a torn tail can never be followed by valid data.
//
// Snapshots bound recovery time by live state rather than append history:
// every SnapshotEvery appends the journal rotates, writes the folded state
// of every job to snapshot.json (atomically, via rename), and deletes the
// segments the snapshot now covers.
//
// The fsync policy trades durability against append latency: "always"
// writes and syncs before every append returns (no acknowledged record can
// be lost to power failure); "interval" group-commits — appends land in a
// process buffer and a timer flushes and syncs them every FsyncInterval,
// so any crash (process or power) loses at most one interval of records;
// "never" hands every append to the OS immediately but leaves syncing to
// it (a process crash loses nothing, power failure loses the page cache).
package journal

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"infogram/internal/clock"
	"infogram/internal/faultinject"
	"infogram/internal/job"
	"infogram/internal/telemetry"
)

// Policy selects when appended records are fsynced to stable storage.
type Policy int

// Fsync policies.
const (
	// FsyncInterval group-commits: appends return after landing in a
	// process buffer, and a timer flushes and syncs the buffer every
	// Options.FsyncInterval. The default.
	FsyncInterval Policy = iota
	// FsyncAlways syncs before every append returns.
	FsyncAlways
	// FsyncNever never calls fsync; the OS flushes at its leisure.
	FsyncNever
)

// String renders the policy as its flag value.
func (p Policy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	}
	return "interval"
}

// ParsePolicy converts a -fsync flag value to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "interval":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	case "never":
		return FsyncNever, nil
	}
	return FsyncInterval, fmt.Errorf("journal: unknown fsync policy %q (want always, interval, or never)", s)
}

// Kind classifies a journal entry.
type Kind uint8

// Journal entry kinds.
const (
	// KindSubmit records a job submission: contact, spec, identity.
	KindSubmit Kind = 1
	// KindState records a job state transition.
	KindState Kind = 2
	// KindCheckpoint records an application checkpoint blob.
	KindCheckpoint Kind = 3
)

// Entry is one journal record. Submit entries carry the identity fields;
// state entries carry the transition; checkpoint entries carry the blob.
// Time is Unix nanoseconds: an integer keeps the per-append encode and the
// recovery-path decode off the time-layout formatter, which dominated the
// append profile.
type Entry struct {
	Kind    Kind   `json:"k"`
	Time    int64  `json:"t"`
	Contact string `json:"c"`

	Spec     string `json:"spec,omitempty"`
	Owner    string `json:"owner,omitempty"`
	Identity string `json:"ident,omitempty"`

	State string `json:"state,omitempty"`
	// ExitCode is set only on terminal states, keeping exit 0
	// distinguishable from "not exited".
	ExitCode *int   `json:"exit,omitempty"`
	Error    string `json:"err,omitempty"`
	Restarts int    `json:"restarts,omitempty"`
	// Stdout/Stderr are pointers so "unchanged" and "set to empty" encode
	// differently, mirroring job.Mutation.
	Stdout *string `json:"stdout,omitempty"`
	Stderr *string `json:"stderr,omitempty"`

	Checkpoint string `json:"ckpt,omitempty"`
}

// JobState is the folded view of one job: the latest value of every field
// across its journal records. It is what snapshots persist and what
// recovery hands back to the service.
type JobState struct {
	Contact    string    `json:"contact"`
	Spec       string    `json:"spec,omitempty"`
	Owner      string    `json:"owner,omitempty"`
	Identity   string    `json:"identity,omitempty"`
	State      job.State `json:"state"`
	ExitCode   int       `json:"exitCode,omitempty"`
	Error      string    `json:"error,omitempty"`
	Stdout     string    `json:"stdout,omitempty"`
	Stderr     string    `json:"stderr,omitempty"`
	Restarts   int       `json:"restarts,omitempty"`
	Checkpoint string    `json:"checkpoint,omitempty"`
	Submitted  time.Time `json:"submitted"`
	Updated    time.Time `json:"updated"`
}

// Recovered is the state rebuilt by Open from snapshot plus segments.
type Recovered struct {
	// Jobs holds every journaled job in first-submission order, terminal
	// and non-terminal alike (terminal ones restore STATUS answers; the
	// rest are resubmitted).
	Jobs []JobState
	// Segments counts the segment files replayed.
	Segments int
	// TornTail reports that the newest segment ended in a torn frame,
	// which recovery dropped.
	TornTail bool
}

// Options configures Open.
type Options struct {
	// Dir is the state directory (created if missing).
	Dir string
	// SegmentBytes is the rotation threshold; DefaultSegmentBytes when 0.
	SegmentBytes int64
	// Fsync is the sync policy (default FsyncInterval).
	Fsync Policy
	// FsyncInterval is the timer period for FsyncInterval;
	// DefaultFsyncInterval when 0.
	FsyncInterval time.Duration
	// SnapshotEvery is the append count between snapshot+compaction
	// cycles; DefaultSnapshotEvery when 0, negative disables snapshots.
	SnapshotEvery int64
	// Telemetry receives the journal metric families; nil disables.
	Telemetry *telemetry.Registry
	// Clock stamps internal operations; defaults to the system clock.
	Clock clock.Clock
}

// Defaults for Options zero values.
const (
	DefaultSegmentBytes  = 4 << 20
	DefaultFsyncInterval = 100 * time.Millisecond
	DefaultSnapshotEvery = 4096
)

// bufSize is the group-commit buffer for the FsyncInterval policy.
const bufSize = 64 << 10

// snapshotBacklogFactor is how many appends a snapshot must be "earned" by
// per folded job before one runs: rewriting the whole state is only worth
// it once the journal tail is a multiple of the state it would replace
// (the rewrite-when-doubled rule append-only-file stores use). A history
// of submit+terminal pairs never reaches the multiple, and correctly so —
// its snapshot would be as long as the tail it replaces.
const snapshotBacklogFactor = 2

// maxRecordBytes rejects absurd frame lengths during replay (a corrupt
// header would otherwise demand gigabytes).
const maxRecordBytes = 16 << 20

// ErrClosed is returned by appends after Close.
var ErrClosed = errors.New("journal: closed")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

const (
	segPrefix    = "journal-"
	segSuffix    = ".seg"
	snapshotName = "snapshot.json"
	frameHeader  = 8 // uint32 length + uint32 crc
)

// Journal is an open write-ahead journal. All methods are safe for
// concurrent use and safe on a nil receiver (no-ops), so callers need no
// "is durability enabled" branches.
type Journal struct {
	opts Options

	mu  sync.Mutex
	seg *os.File
	// buf group-commits appends under the FsyncInterval policy; nil for
	// the other policies, which write straight to seg.
	buf *bufio.Writer
	// encBuf is the reusable frame-encoding scratch buffer (guarded by mu).
	encBuf    []byte
	segIndex  int
	segBytes  int64
	sinceSnap int64
	dirty     bool // unsynced writes (interval policy)
	closed    bool
	// state holds live (non-terminal) jobs; terminal jobs move to retired
	// as pre-marshaled JobState JSON. A long-lived gatekeeper folds every
	// job it ever ran, and keeping the terminal majority as pointer-free
	// blobs instead of 10-pointer structs keeps the GC's scan work (and
	// snapshot marshaling) proportional to live jobs, not history.
	state   map[string]*JobState
	retired map[string][]byte
	order   []string // contacts in first-submission order

	// taps are live replication subscribers (see repl.go).
	taps []*Tap

	stop chan struct{}
	done chan struct{}

	appends      *telemetry.Counter
	appendErrors *telemetry.Counter
	fsyncSeconds *telemetry.Histogram
	recovered    *telemetry.Counter
	segments     *telemetry.Gauge
	snapshots    *telemetry.Counter
	snapshotJobs *telemetry.Gauge
}

// Open creates or reopens a journal in opts.Dir, replays whatever state is
// on disk, and starts a fresh segment for this process epoch. The returned
// Recovered holds the folded pre-crash state; the journal's future
// snapshots keep covering it.
func Open(opts Options) (*Journal, *Recovered, error) {
	if opts.Dir == "" {
		return nil, nil, errors.New("journal: no state directory")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = DefaultFsyncInterval
	}
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = DefaultSnapshotEvery
	}
	if opts.Clock == nil {
		opts.Clock = clock.System
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: state dir: %w", err)
	}

	j := &Journal{
		opts:    opts,
		state:   make(map[string]*JobState),
		retired: make(map[string][]byte),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	j.bindTelemetry(opts.Telemetry)

	rec, nextSeg, err := j.replay()
	if err != nil {
		return nil, nil, err
	}
	j.segIndex = nextSeg
	if err := j.openSegment(); err != nil {
		return nil, nil, err
	}
	j.updateSegmentGauge()

	if opts.Fsync == FsyncInterval {
		go j.fsyncLoop()
	} else {
		close(j.done)
	}
	return j, rec, nil
}

func (j *Journal) bindTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	j.appends = reg.Counter("infogram_journal_appends_total", "job-state records appended to the write-ahead journal")
	j.appendErrors = reg.Counter("infogram_journal_append_errors_total", "journal appends that failed (record not durable)")
	j.fsyncSeconds = reg.Histogram("infogram_journal_fsync_seconds", "journal fsync latency")
	j.recovered = reg.Counter("infogram_journal_recovered_jobs_total", "non-terminal jobs replayed from the journal and resubmitted at boot")
	j.segments = reg.Gauge("infogram_journal_segments", "journal segment files on disk")
	j.snapshots = reg.Counter("infogram_journal_snapshots_total", "snapshot+compaction cycles completed")
	j.snapshotJobs = reg.Gauge("infogram_journal_snapshot_jobs", "jobs folded into the latest snapshot")
}

// NoteRecovered counts jobs resubmitted by boot-time recovery into
// infogram_journal_recovered_jobs_total.
func (j *Journal) NoteRecovered(n int) {
	if j == nil {
		return
	}
	j.recovered.Add(int64(n))
}

// Dir returns the state directory.
func (j *Journal) Dir() string {
	if j == nil {
		return ""
	}
	return j.opts.Dir
}

// Append journals one entry. Under FsyncAlways the record is on stable
// storage before Append returns; under FsyncNever it is handed to the OS;
// under FsyncInterval it is group-committed — buffered in-process and
// flushed+synced by the interval timer, so a crash loses at most one
// interval of appends. An error means the record is NOT durable and the
// caller must not acknowledge the operation it records. Nil-safe: a nil
// journal accepts everything. A traced append records a "journal.append"
// span (with the fsync, if any, as a child).
func (j *Journal) Append(ctx context.Context, e Entry) error {
	if j == nil {
		return nil
	}
	ctx, sp := telemetry.StartSpan(ctx, "journal.append")
	err := j.append(ctx, e)
	if sp != nil {
		if err != nil {
			sp.Fail(err.Error())
		}
		sp.End()
	}
	return err
}

func (j *Journal) append(ctx context.Context, e Entry) error {
	if _, err := faultinject.Eval(ctx, faultinject.JournalAppend); err != nil {
		j.appendErrors.Inc()
		return fmt.Errorf("journal: append: %w", err)
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		j.appendErrors.Inc()
		return ErrClosed
	}
	// Encode into the journal's scratch buffer (safe under mu), framing
	// header first so payload length and CRC can be patched in afterwards.
	frame := appendEntry(BeginFrame(j.encBuf[:0]), e)
	j.encBuf = frame
	FinishFrame(frame)
	if j.segBytes > 0 && j.segBytes+int64(len(frame)) > j.opts.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			j.appendErrors.Inc()
			return err
		}
	}
	if err := j.writeLocked(frame); err != nil {
		j.appendErrors.Inc()
		return fmt.Errorf("journal: append: %w", err)
	}
	j.segBytes += int64(len(frame))
	j.applyLocked(e)
	j.notifyTapsLocked(frame[frameHeader:])
	j.appends.Inc()
	j.dirty = true
	if j.opts.Fsync == FsyncAlways {
		if err := j.syncLocked(ctx); err != nil {
			j.appendErrors.Inc()
			return err
		}
	}
	j.sinceSnap++
	// A snapshot costs O(folded jobs), so it must be earned by a multiple
	// of that many appends (as well as the configured floor) — otherwise a
	// long-lived service whose history keeps growing would re-marshal the
	// whole past every fixed interval, turning appends quadratic. Requiring
	// tail length >= a multiple of state size amortizes the rewrite to O(1)
	// per append, the same trigger rule as append-only-file rewrites in
	// production stores.
	if j.opts.SnapshotEvery > 0 && j.sinceSnap >= j.opts.SnapshotEvery &&
		j.sinceSnap >= snapshotBacklogFactor*int64(len(j.state)+len(j.retired)) {
		// Compaction failures must not fail the append: the record is
		// already durable in the current segment.
		_ = j.snapshotLocked(ctx)
	}
	return nil
}

// Snapshot forces a snapshot+compaction cycle immediately.
func (j *Journal) Snapshot() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	return j.snapshotLocked(context.Background())
}

// Sync forces an fsync of the current segment.
func (j *Journal) Sync() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	return j.syncLocked(context.Background())
}

// Close stops the fsync loop, syncs, and closes the current segment.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	for len(j.taps) > 0 {
		j.dropTapLocked(j.taps[0])
	}
	syncErr := j.flushLocked()
	if err := j.seg.Sync(); syncErr == nil {
		syncErr = err
	}
	closeErr := j.seg.Close()
	j.mu.Unlock()
	close(j.stop)
	<-j.done
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// Jobs returns the current folded state of every journaled job in
// first-submission order (primarily for tests and tooling).
func (j *Journal) Jobs() []JobState {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]JobState, 0, len(j.order))
	for _, c := range j.order {
		if js, ok := j.jobStateLocked(c); ok {
			out = append(out, js)
		}
	}
	return out
}

// fsyncLoop is the FsyncInterval background syncer. It flushes the
// group-commit buffer under the lock but syncs outside it: an fsync can
// take milliseconds, and holding the append mutex across it would stall
// every submission that lands during the sync — the exact latency the
// interval policy exists to avoid.
func (j *Journal) fsyncLoop() {
	defer close(j.done)
	t := time.NewTicker(j.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			j.mu.Lock()
			if j.closed || !j.dirty {
				j.mu.Unlock()
				continue
			}
			if err := j.flushLocked(); err != nil {
				j.mu.Unlock()
				continue
			}
			j.dirty = false
			seg := j.seg
			j.mu.Unlock()
			start := j.opts.Clock.Now()
			// The sync can race a rotation closing this segment; rotation
			// itself syncs before closing, so a "file already closed" error
			// here loses nothing.
			if err := seg.Sync(); err == nil {
				j.fsyncSeconds.Observe(j.opts.Clock.Now().Sub(start))
			}
		case <-j.stop:
			return
		}
	}
}

// writeLocked appends raw bytes to the current segment, through the
// group-commit buffer when the policy has one. Caller holds mu.
func (j *Journal) writeLocked(b []byte) error {
	if j.buf != nil {
		_, err := j.buf.Write(b)
		return err
	}
	_, err := j.seg.Write(b)
	return err
}

// flushLocked drains the group-commit buffer to the OS. Caller holds mu.
func (j *Journal) flushLocked() error {
	if j.buf == nil {
		return nil
	}
	return j.buf.Flush()
}

// syncLocked flushes any buffered appends and fsyncs the current segment.
// Caller holds mu. A traced sync records a "journal.fsync" span.
func (j *Journal) syncLocked(ctx context.Context) error {
	ctx, sp := telemetry.StartSpan(ctx, "journal.fsync")
	err := j.syncRunLocked(ctx)
	if sp != nil {
		if err != nil {
			sp.Fail(err.Error())
		}
		sp.End()
	}
	return err
}

func (j *Journal) syncRunLocked(ctx context.Context) error {
	if _, err := faultinject.Eval(ctx, faultinject.JournalFsync); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	if err := j.flushLocked(); err != nil {
		return fmt.Errorf("journal: flush: %w", err)
	}
	start := j.opts.Clock.Now()
	err := j.seg.Sync()
	j.fsyncSeconds.Observe(j.opts.Clock.Now().Sub(start))
	if err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.dirty = false
	return nil
}

// applyLocked folds one entry into the in-memory state. Caller holds mu.
func (j *Journal) applyLocked(e Entry) {
	js, ok := j.state[e.Contact]
	if !ok {
		if blob, wasRetired := j.retired[e.Contact]; wasRetired {
			// A record for a terminal job: a restart (FAILED -> PENDING) or
			// a replayed history. Revive the blob so the fold continues.
			js = &JobState{}
			if err := json.Unmarshal(blob, js); err != nil {
				return
			}
			delete(j.retired, e.Contact)
			j.state[e.Contact] = js
		} else if e.Kind != KindSubmit {
			// A state or checkpoint record for a contact the journal never
			// saw submitted: tampered history; ignore rather than invent a
			// job with no spec.
			return
		} else {
			js = &JobState{Contact: e.Contact, Submitted: time.Unix(0, e.Time)}
			j.state[e.Contact] = js
			j.order = append(j.order, e.Contact)
		}
	}
	switch e.Kind {
	case KindSubmit:
		js.Spec = e.Spec
		js.Owner = e.Owner
		js.Identity = e.Identity
		js.Updated = time.Unix(0, e.Time)
	case KindState:
		if st, err := job.ParseState(e.State); err == nil {
			js.State = st
		}
		if e.ExitCode != nil {
			js.ExitCode = *e.ExitCode
		}
		js.Error = e.Error
		js.Restarts = e.Restarts
		if e.Stdout != nil {
			js.Stdout = *e.Stdout
		}
		if e.Stderr != nil {
			js.Stderr = *e.Stderr
		}
		js.Updated = time.Unix(0, e.Time)
	case KindCheckpoint:
		js.Checkpoint = e.Checkpoint
		js.Updated = time.Unix(0, e.Time)
	}
	if js.State.Terminal() {
		j.retired[e.Contact] = appendJobState(nil, js)
		delete(j.state, e.Contact)
	}
}

// jobStateLocked returns the folded state of one contact, live or retired.
// Caller holds mu.
func (j *Journal) jobStateLocked(contact string) (JobState, bool) {
	if js, ok := j.state[contact]; ok {
		return *js, true
	}
	if blob, ok := j.retired[contact]; ok {
		var js JobState
		if err := json.Unmarshal(blob, &js); err == nil {
			return js, true
		}
	}
	return JobState{}, false
}

// segPath names segment i.
func (j *Journal) segPath(i int) string {
	return filepath.Join(j.opts.Dir, fmt.Sprintf("%s%08d%s", segPrefix, i, segSuffix))
}

// openSegment opens segment j.segIndex fresh for appending.
func (j *Journal) openSegment() error {
	f, err := os.OpenFile(j.segPath(j.segIndex), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("journal: open segment: %w", err)
	}
	j.seg = f
	j.segBytes = 0
	if j.opts.Fsync == FsyncInterval {
		if j.buf == nil {
			j.buf = bufio.NewWriterSize(f, bufSize)
		} else {
			j.buf.Reset(f)
		}
	}
	return nil
}

// rotateLocked closes the current segment and opens the next. Caller
// holds mu. The finished segment is synced and closed off the append
// path: its bytes are already with the OS, and a multi-megabyte fsync
// under the append lock would stall every submission that arrives while
// it runs.
func (j *Journal) rotateLocked() error {
	if err := j.flushLocked(); err != nil {
		return fmt.Errorf("journal: rotate: %w", err)
	}
	go func(f *os.File) {
		_ = f.Sync()
		_ = f.Close()
	}(j.seg)
	j.segIndex++
	if err := j.openSegment(); err != nil {
		return err
	}
	j.updateSegmentGauge()
	return nil
}

// snapshot is the on-disk snapshot file format.
type snapshot struct {
	// NextSeg is the first segment index NOT covered by this snapshot;
	// recovery replays only segments >= NextSeg.
	NextSeg int        `json:"nextSeg"`
	Jobs    []JobState `json:"jobs"`
}

// snapshotLocked rotates, persists the folded state, and deletes the
// segments the snapshot now covers. Caller holds mu.
func (j *Journal) snapshotLocked(ctx context.Context) error {
	if err := j.rotateLocked(); err != nil {
		return err
	}
	// Retired jobs are already marshaled; splicing their blobs in as raw
	// JSON keeps the snapshot cost proportional to live jobs. The on-disk
	// format is identical to marshaling a []JobState.
	rawSnap := struct {
		NextSeg int               `json:"nextSeg"`
		Jobs    []json.RawMessage `json:"jobs"`
	}{NextSeg: j.segIndex, Jobs: make([]json.RawMessage, 0, len(j.order))}
	for _, c := range j.order {
		if js, ok := j.state[c]; ok {
			rawSnap.Jobs = append(rawSnap.Jobs, appendJobState(nil, js))
		} else if blob, ok := j.retired[c]; ok {
			rawSnap.Jobs = append(rawSnap.Jobs, blob)
		}
	}
	b, err := json.Marshal(rawSnap)
	if err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	tmp := filepath.Join(j.opts.Dir, snapshotName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if _, err := faultinject.Eval(ctx, faultinject.JournalFsync); err != nil {
		f.Close()
		return fmt.Errorf("journal: snapshot fsync: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	// The rename is the commit point: only after it may covered segments
	// go. A crash in between leaves extra segments behind, which recovery
	// skips via NextSeg.
	if err := os.Rename(tmp, filepath.Join(j.opts.Dir, snapshotName)); err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	for _, idx := range j.listSegments() {
		if idx < rawSnap.NextSeg {
			_ = os.Remove(j.segPath(idx))
		}
	}
	j.sinceSnap = 0
	j.snapshots.Inc()
	j.snapshotJobs.Set(int64(len(rawSnap.Jobs)))
	j.updateSegmentGauge()
	return nil
}

// listSegments returns the indices of segment files on disk, sorted.
func (j *Journal) listSegments() []int {
	entries, err := os.ReadDir(j.opts.Dir)
	if err != nil {
		return nil
	}
	var out []int
	for _, de := range entries {
		name := de.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		var idx int
		if _, err := fmt.Sscanf(name, segPrefix+"%08d"+segSuffix, &idx); err != nil {
			continue
		}
		out = append(out, idx)
	}
	sort.Ints(out)
	return out
}

func (j *Journal) updateSegmentGauge() {
	j.segments.Set(int64(len(j.listSegments())))
}

// replay loads the snapshot and replays uncovered segments into j.state,
// returning the recovered view and the index this epoch's fresh segment
// should use.
func (j *Journal) replay() (*Recovered, int, error) {
	rec := &Recovered{}
	nextSeg := 0

	snapPath := filepath.Join(j.opts.Dir, snapshotName)
	if b, err := os.ReadFile(snapPath); err == nil {
		var snap snapshot
		if err := json.Unmarshal(b, &snap); err != nil {
			return nil, 0, fmt.Errorf("journal: corrupt snapshot %s: %w", snapPath, err)
		}
		for i := range snap.Jobs {
			js := snap.Jobs[i]
			if js.State.Terminal() {
				j.retired[js.Contact] = appendJobState(nil, &js)
				j.order = append(j.order, js.Contact)
				continue
			}
			j.state[js.Contact] = &js
			j.order = append(j.order, js.Contact)
		}
		nextSeg = snap.NextSeg
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, 0, fmt.Errorf("journal: read snapshot: %w", err)
	}

	segs := j.listSegments()
	epoch := nextSeg
	for i, idx := range segs {
		if idx >= epoch {
			epoch = idx + 1
		}
		if idx < nextSeg {
			continue // covered by the snapshot (compaction died pre-delete)
		}
		last := i == len(segs)-1
		torn, err := j.replaySegment(j.segPath(idx), last)
		if err != nil {
			return nil, 0, err
		}
		rec.Segments++
		rec.TornTail = rec.TornTail || torn
	}

	rec.Jobs = make([]JobState, 0, len(j.order))
	for _, c := range j.order {
		if js, ok := j.jobStateLocked(c); ok {
			rec.Jobs = append(rec.Jobs, js)
		}
	}
	return rec, epoch, nil
}

// replaySegment folds one segment file into j.state. A bad frame is
// tolerated (and reported) only at the tail of the last segment.
func (j *Journal) replaySegment(path string, last bool) (torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return false, fmt.Errorf("journal: replay: %w", err)
	}
	defer f.Close()

	fr := NewFrameReader(f, maxRecordBytes)
	for {
		payload, err := fr.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return false, nil // clean end
			}
			// Torn tail and mid-file corruption get the same treatment the
			// journal has always applied: forgivable only at the tail of the
			// newest segment.
			return j.tolerateTear(path, fr.Offset(), last, err.Error())
		}
		var e Entry
		if err := json.Unmarshal(payload, &e); err != nil {
			return j.tolerateTear(path, fr.Offset(), last, "unparsable record")
		}
		j.applyLocked(e)
	}
}

// tolerateTear decides whether a bad frame is a forgivable torn tail (last
// segment) or fatal corruption (anywhere else).
func (j *Journal) tolerateTear(path string, offset int64, last bool, what string) (bool, error) {
	if last {
		return true, nil
	}
	return false, fmt.Errorf("journal: %s at %s offset %d: mid-history corruption", what, path, offset)
}
