package journal

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"infogram/internal/job"
)

// TestAppendEntryMatchesEncodingJSON pins the hand-rolled append-path
// encoder to encoding/json semantics: every entry must decode back to the
// same Entry that json.Marshal's output does, across empty/set fields,
// pointers, escapes, and non-ASCII content.
func TestAppendEntryMatchesEncodingJSON(t *testing.T) {
	exit := 42
	negExit := -1
	empty := ""
	out := "line one\nline \"two\"\t\\end"
	utf := "héllo — ∆ grid"
	bad := "torn\xffbyte"
	entries := []Entry{
		{},
		{Kind: KindSubmit, Time: time.Date(2026, 8, 5, 12, 0, 0, 123456789, time.UTC).UnixNano(),
			Contact: "gram://host:4444/1/7", Spec: "&(executable=/bin/true)(jobtype=func)",
			Owner: "alice", Identity: "CN=Alice"},
		{Kind: KindState, Time: 1, Contact: "c1", State: "DONE",
			ExitCode: &exit, Restarts: 3, Stdout: &out, Stderr: &empty},
		{Kind: KindState, Contact: "c2", State: "FAILED", ExitCode: &negExit,
			Error: "exit code 1 (will restart)"},
		{Kind: KindCheckpoint, Contact: "c3", Checkpoint: "step=9"},
		{Kind: KindSubmit, Contact: utf, Spec: bad, Error: "<&>"},
	}
	for i, e := range entries {
		hand := appendEntry(nil, e)
		std, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("entry %d: json.Marshal: %v", i, err)
		}
		var fromHand, fromStd Entry
		if err := json.Unmarshal(hand, &fromHand); err != nil {
			t.Fatalf("entry %d: hand encoding %q does not decode: %v", i, hand, err)
		}
		if err := json.Unmarshal(std, &fromStd); err != nil {
			t.Fatalf("entry %d: std encoding does not decode: %v", i, err)
		}
		if !reflect.DeepEqual(fromHand, fromStd) {
			t.Fatalf("entry %d: hand and std encodings diverge:\nhand %s -> %+v\nstd  %s -> %+v",
				i, hand, fromHand, std, fromStd)
		}
	}
}

// TestAppendJobStateMatchesEncodingJSON pins the retirement/snapshot
// encoder to encoding/json the same way: both encodings must decode to
// the same JobState.
func TestAppendJobStateMatchesEncodingJSON(t *testing.T) {
	submitted := time.Date(2026, 8, 5, 12, 0, 0, 123456789, time.UTC)
	states := []JobState{
		{},
		{Contact: "gram://host:4444/1/7", Spec: "&(executable=/bin/true)(jobtype=func)",
			Owner: "alice", Identity: "CN=Alice", State: job.Active,
			Submitted: submitted, Updated: submitted.Add(time.Second)},
		{Contact: "c1", State: job.Done, ExitCode: 0, Restarts: 2,
			Stdout: "line one\nline \"two\"\t\\end", Checkpoint: "step=9",
			Submitted: submitted, Updated: submitted.In(time.FixedZone("CET", 3600))},
		{Contact: "c2", State: job.Failed, ExitCode: -1,
			Error: "exit code 1 (will restart)", Stderr: "boom"},
		{Contact: "héllo — ∆ grid", Spec: "torn\xffbyte", Error: "<&>",
			State: job.Done, Submitted: submitted.Local()},
	}
	for i := range states {
		js := &states[i]
		hand := appendJobState(nil, js)
		std, err := json.Marshal(js)
		if err != nil {
			t.Fatalf("state %d: json.Marshal: %v", i, err)
		}
		var fromHand, fromStd JobState
		if err := json.Unmarshal(hand, &fromHand); err != nil {
			t.Fatalf("state %d: hand encoding %q does not decode: %v", i, hand, err)
		}
		if err := json.Unmarshal(std, &fromStd); err != nil {
			t.Fatalf("state %d: std encoding does not decode: %v", i, err)
		}
		if !reflect.DeepEqual(fromHand, fromStd) {
			t.Fatalf("state %d: hand and std encodings diverge:\nhand %s -> %+v\nstd  %s -> %+v",
				i, hand, fromHand, std, fromStd)
		}
	}
}
