package journal

import (
	"os"
	"path/filepath"
)

// Wire replication support: a follower gatekeeper tails this journal
// over the REPL capability (internal/core serves it, internal/cluster
// consumes it). Subscribe captures a consistent cut of the on-disk
// history — the snapshot plus every segment's current byte length —
// and registers a live tap in the same critical section, so the
// backlog and the record stream compose without a gap or a duplicate:
// every record is either inside a captured prefix or delivered on the
// tap, never both, never neither.

// SegmentInfo describes one segment file at subscription time. Size is
// the flushed byte length at the cut; bytes past it belong to the live
// stream.
type SegmentInfo struct {
	Index int   `json:"index"`
	Size  int64 `json:"size"`
}

// Backlog is the consistent cut Subscribe captured: the snapshot file
// (nil when none exists) and the segment prefixes that, replayed in
// order, reproduce the journal's folded state at the cut.
type Backlog struct {
	Snapshot []byte        `json:"-"`
	Segments []SegmentInfo `json:"segments"`
}

// Tap is a live subscription to appended records. Records() yields each
// post-cut record's JSON payload (unframed); the channel closes when the
// journal closes or the subscriber falls more than its buffer behind —
// a closed tap means the follower must re-subscribe and re-sync, which
// trades leader memory (no unbounded backlog per slow follower) for a
// rare full re-ship.
type Tap struct {
	ch     chan []byte
	closed bool // guarded by the journal's mu
}

// Records is the live record stream. Payloads are fresh copies; the
// receiver owns them.
func (t *Tap) Records() <-chan []byte { return t.ch }

// Subscribe captures the backlog cut and registers a live tap with the
// given channel buffer (minimum 16). The caller must Unsubscribe when
// done. Nil-safe: a nil journal returns nils.
func (j *Journal) Subscribe(buffer int) (*Tap, *Backlog, error) {
	if j == nil {
		return nil, nil, nil
	}
	if buffer < 16 {
		buffer = 16
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil, nil, ErrClosed
	}
	// Flush the group-commit buffer so file sizes cover every append that
	// happened before the cut.
	if err := j.flushLocked(); err != nil {
		return nil, nil, err
	}
	bl := &Backlog{}
	if b, err := os.ReadFile(filepath.Join(j.opts.Dir, snapshotName)); err == nil {
		bl.Snapshot = b
	} else if !os.IsNotExist(err) {
		return nil, nil, err
	}
	for _, idx := range j.listSegments() {
		var size int64
		if idx == j.segIndex {
			size = j.segBytes
		} else {
			st, err := os.Stat(j.segPath(idx))
			if err != nil {
				continue // compacted between list and stat; snapshot covers it
			}
			size = st.Size()
		}
		bl.Segments = append(bl.Segments, SegmentInfo{Index: idx, Size: size})
	}
	t := &Tap{ch: make(chan []byte, buffer)}
	j.taps = append(j.taps, t)
	return t, bl, nil
}

// Unsubscribe removes a tap; its channel closes. Safe to call twice.
func (j *Journal) Unsubscribe(t *Tap) {
	if j == nil || t == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.dropTapLocked(t)
}

// dropTapLocked closes and removes one tap. Caller holds mu.
func (j *Journal) dropTapLocked(t *Tap) {
	if t.closed {
		return
	}
	t.closed = true
	close(t.ch)
	kept := j.taps[:0]
	for _, x := range j.taps {
		if x != t {
			kept = append(kept, x)
		}
	}
	j.taps = kept
}

// notifyTapsLocked hands one appended record's JSON payload to every
// live tap. The payload is copied once (the caller's buffer is the
// journal's reusable scratch); the send never blocks the append path: a
// subscriber that cannot keep up is dropped (closed channel), which the
// replication layer turns into a full re-sync. Caller holds mu.
func (j *Journal) notifyTapsLocked(raw []byte) {
	if len(j.taps) == 0 {
		return
	}
	payload := append([]byte(nil), raw...)
	for i := 0; i < len(j.taps); {
		t := j.taps[i]
		select {
		case t.ch <- payload:
			i++
		default:
			j.dropTapLocked(t) // mutates j.taps in place; retry index i
		}
	}
}

// SegmentPath exposes the path of segment idx for the replication
// reader (read-only open by the serving layer).
func (j *Journal) SegmentPath(idx int) string {
	if j == nil {
		return ""
	}
	return j.segPath(idx)
}
