package journal

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"infogram/internal/faultinject"
	"infogram/internal/job"
	"infogram/internal/telemetry"
)

func intPtr(n int) *int { return &n }

func strPtr(s string) *string { return &s }

func openTestJournal(t *testing.T, dir string, mutate func(*Options)) (*Journal, *Recovered) {
	t.Helper()
	opts := Options{Dir: dir, Fsync: FsyncNever}
	if mutate != nil {
		mutate(&opts)
	}
	j, rec, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j, rec
}

// submitAndFinish journals a full submit -> PENDING -> ACTIVE -> terminal
// lifecycle for one contact.
func submitAndFinish(t *testing.T, j *Journal, contact string, terminal job.State) {
	t.Helper()
	ctx := context.Background()
	now := time.Now()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(j.Append(ctx, Entry{Kind: KindSubmit, Time: now.UnixNano(), Contact: contact,
		Spec: "&(executable=noop)(jobtype=func)", Owner: "alice", Identity: "/O=Grid/CN=alice"}))
	must(j.Append(ctx, Entry{Kind: KindState, Time: now.UnixNano(), Contact: contact, State: "PENDING"}))
	must(j.Append(ctx, Entry{Kind: KindState, Time: now.UnixNano(), Contact: contact, State: "ACTIVE"}))
	must(j.Append(ctx, Entry{Kind: KindState, Time: now.UnixNano(), Contact: contact, State: terminal.String(),
		ExitCode: intPtr(0), Stdout: strPtr("out-" + contact)}))
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, rec := openTestJournal(t, dir, nil)
	if len(rec.Jobs) != 0 {
		t.Fatalf("fresh journal recovered %d jobs", len(rec.Jobs))
	}
	submitAndFinish(t, j, "c1", job.Done)
	ctx := context.Background()
	if err := j.Append(ctx, Entry{Kind: KindSubmit, Time: time.Now().UnixNano(), Contact: "c2",
		Spec: "&(executable=slow)(jobtype=func)", Owner: "bob", Identity: "/O=Grid/CN=bob"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(ctx, Entry{Kind: KindState, Time: time.Now().UnixNano(), Contact: "c2", State: "ACTIVE", Restarts: 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(ctx, Entry{Kind: KindCheckpoint, Time: time.Now().UnixNano(), Contact: "c2", Checkpoint: "step=7"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec2 := openTestJournal(t, dir, nil)
	if len(rec2.Jobs) != 2 {
		t.Fatalf("recovered %d jobs; want 2", len(rec2.Jobs))
	}
	c1, c2 := rec2.Jobs[0], rec2.Jobs[1]
	if c1.Contact != "c1" || c2.Contact != "c2" {
		t.Fatalf("submission order lost: %q, %q", c1.Contact, c2.Contact)
	}
	if c1.State != job.Done || c1.Stdout != "out-c1" || c1.Owner != "alice" {
		t.Fatalf("c1 folded wrong: %+v", c1)
	}
	if c2.State != job.Active || c2.Restarts != 1 || c2.Checkpoint != "step=7" {
		t.Fatalf("c2 folded wrong: %+v", c2)
	}
	if rec2.TornTail {
		t.Fatal("clean shutdown reported a torn tail")
	}
}

func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	j, _ := openTestJournal(t, dir, nil)
	submitAndFinish(t, j, "c1", job.Done)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a frame header promising more bytes
	// than follow, at the tail of the newest segment.
	segs, err := filepath.Glob(filepath.Join(dir, "journal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v %v", segs, err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 'x', 'y'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, rec := openTestJournal(t, dir, nil)
	if !rec.TornTail {
		t.Fatal("torn tail not reported")
	}
	if len(rec.Jobs) != 1 || rec.Jobs[0].State != job.Done {
		t.Fatalf("intact prefix lost: %+v", rec.Jobs)
	}
}

func TestCorruptMidHistoryFailsRecovery(t *testing.T) {
	dir := t.TempDir()
	j, _ := openTestJournal(t, dir, func(o *Options) { o.SnapshotEvery = -1 })
	submitAndFinish(t, j, "c1", job.Done)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the middle of the (non-last) first segment,
	// then add a later segment so the corruption is mid-history.
	segs, _ := filepath.Glob(filepath.Join(dir, "journal-*.seg"))
	b, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(segs[0], b, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, _ := openTestJournal(t, dir, func(o *Options) { o.SnapshotEvery = -1 })
	submitAndFinish(t, j2, "c2", job.Done)
	j2.Close()

	_, _, err = Open(Options{Dir: dir, Fsync: FsyncNever})
	if err == nil || !strings.Contains(err.Error(), "corruption") {
		t.Fatalf("mid-history corruption not fatal: %v", err)
	}
}

func TestSegmentRotationAndSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	tel := telemetry.NewRegistry()
	j, _ := openTestJournal(t, dir, func(o *Options) {
		o.SegmentBytes = 512 // rotate often
		o.SnapshotEvery = 40 // snapshot after 10 jobs
		o.Telemetry = tel
	})
	for i := 0; i < 25; i++ {
		submitAndFinish(t, j, "c"+string(rune('a'+i)), job.Done)
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.json")); err != nil {
		t.Fatalf("no snapshot written: %v", err)
	}
	snaps := tel.Counter("infogram_journal_snapshots_total", "")
	if snaps.Value() == 0 {
		t.Fatal("snapshot counter never incremented")
	}
	// Compaction must have deleted covered segments: far fewer files than
	// the ~25 jobs * 4 records / tiny segment size would otherwise leave.
	segs := j.listSegments()
	if len(segs) > 10 {
		t.Fatalf("%d segments after compaction; snapshots are not deleting covered history", len(segs))
	}
	j.Close()

	// Recovery from snapshot + tail sees all jobs exactly once.
	_, rec := openTestJournal(t, dir, nil)
	if len(rec.Jobs) != 25 {
		t.Fatalf("recovered %d jobs; want 25", len(rec.Jobs))
	}
	for _, js := range rec.Jobs {
		if js.State != job.Done {
			t.Fatalf("job %q recovered as %s", js.Contact, js.State)
		}
	}
}

func TestFsyncAlwaysAndMetrics(t *testing.T) {
	tel := telemetry.NewRegistry()
	j, _ := openTestJournal(t, t.TempDir(), func(o *Options) {
		o.Fsync = FsyncAlways
		o.Telemetry = tel
	})
	submitAndFinish(t, j, "c1", job.Done)
	appends := tel.Counter("infogram_journal_appends_total", "")
	if appends.Value() != 4 {
		t.Fatalf("appends counter = %d; want 4", appends.Value())
	}
	if got := tel.Histogram("infogram_journal_fsync_seconds", "").Snapshot().Count; got < 4 {
		t.Fatalf("fsync histogram counted %d observations; want >= 4", got)
	}
}

func TestFsyncIntervalSyncsInBackground(t *testing.T) {
	j, _ := openTestJournal(t, t.TempDir(), func(o *Options) {
		o.Fsync = FsyncInterval
		o.FsyncInterval = 5 * time.Millisecond
	})
	submitAndFinish(t, j, "c1", job.Done)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		j.mu.Lock()
		dirty := j.dirty
		j.mu.Unlock()
		if !dirty {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("background fsync never cleared the dirty flag")
}

func TestAppendFailpointRefusesRecord(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	j, _ := openTestJournal(t, t.TempDir(), nil)
	faultinject.Arm(faultinject.JournalAppend, faultinject.Action{Err: errors.New("disk gone"), Count: 1})
	err := j.Append(context.Background(), Entry{Kind: KindSubmit, Contact: "c1", Time: time.Now().UnixNano()})
	if err == nil || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("armed append failpoint not surfaced: %v", err)
	}
	// The refused record must not exist anywhere.
	if got := j.Jobs(); len(got) != 0 {
		t.Fatalf("refused record folded into state: %+v", got)
	}
	if err := j.Append(context.Background(), Entry{Kind: KindSubmit, Contact: "c1", Time: time.Now().UnixNano()}); err != nil {
		t.Fatalf("append after consumed failpoint: %v", err)
	}
}

func TestFsyncFailpointFailsAlwaysPolicyAppend(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	j, _ := openTestJournal(t, t.TempDir(), func(o *Options) { o.Fsync = FsyncAlways })
	faultinject.Arm(faultinject.JournalFsync, faultinject.Action{Err: errors.New("sync lost"), Count: 1})
	err := j.Append(context.Background(), Entry{Kind: KindSubmit, Contact: "c1", Time: time.Now().UnixNano()})
	if err == nil || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("fsync failpoint not surfaced under FsyncAlways: %v", err)
	}
}

func TestClosedJournalRefusesAppends(t *testing.T) {
	j, _ := openTestJournal(t, t.TempDir(), nil)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(context.Background(), Entry{Kind: KindSubmit, Contact: "c"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestNilJournalIsInert(t *testing.T) {
	var j *Journal
	if err := j.Append(context.Background(), Entry{}); err != nil {
		t.Fatal(err)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j.NoteRecovered(3)
	if j.Jobs() != nil || j.Dir() != "" {
		t.Fatal("nil journal leaked state")
	}
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]Policy{"": FsyncInterval, "interval": FsyncInterval, "ALWAYS": FsyncAlways, "never": FsyncNever} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestSnapshotSurvivesUndeletedSegments(t *testing.T) {
	// A crash between snapshot rename and segment deletion leaves covered
	// segments behind; recovery must skip them (no double-fold).
	dir := t.TempDir()
	j, _ := openTestJournal(t, dir, func(o *Options) { o.SnapshotEvery = -1 })
	submitAndFinish(t, j, "c1", job.Done)
	stale := filepath.Join(dir, "journal-00000000.seg")
	pre, err := os.ReadFile(stale)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Snapshot(); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := os.Stat(stale); err == nil {
		t.Fatal("compaction left the covered segment behind")
	}
	// Resurrect the covered segment: its records are already folded into
	// the snapshot and would double-apply if replayed.
	if err := os.WriteFile(stale, pre, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := openTestJournal(t, dir, nil)
	if len(rec.Jobs) != 1 {
		t.Fatalf("recovered %d jobs; want 1 (covered segment replayed?)", len(rec.Jobs))
	}
	if rec.Jobs[0].State != job.Done {
		t.Fatalf("job state %s after skipping covered segment", rec.Jobs[0].State)
	}
}
