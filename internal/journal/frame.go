package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// The CRC frame format used by the write-ahead journal — a little-endian
// uint32 payload length, a uint32 CRC-32C of the payload, then the payload
// — is useful beyond job durability: the response-cache snapshots reuse it
// so a torn or bit-flipped snapshot is detected the same way a torn
// journal tail is. This file exports the framing as a small reader/writer
// pair; the journal's own append and replay paths are built on it.

// ErrTornFrame reports a frame cut short by the end of the stream: a
// partial header or a payload shorter than its declared length. For an
// append-only file this is the signature of a torn final write (process or
// host died mid-append) and callers usually keep everything before it.
var ErrTornFrame = errors.New("journal: torn frame")

// ErrFrameCorrupt reports a structurally complete but damaged frame: CRC
// mismatch or a length field beyond the reader's limit. Unlike a torn
// tail, corruption gives no guarantee about anything that follows it.
var ErrFrameCorrupt = errors.New("journal: corrupt frame")

// BeginFrame appends the 8-byte frame-header placeholder to dst and
// returns the extended slice. Build the payload by appending to the
// result, then seal it with FinishFrame.
func BeginFrame(dst []byte) []byte {
	return append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
}

// FinishFrame patches the length and CRC of a frame whose payload was
// appended after BeginFrame. frame must be the full buffer starting at the
// header placeholder.
func FinishFrame(frame []byte) {
	payload := frame[frameHeader:]
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
}

// AppendFrame frames payload and appends the encoded frame to dst.
func AppendFrame(dst, payload []byte) []byte {
	frame := append(BeginFrame(dst), payload...)
	FinishFrame(frame[len(dst):])
	return frame
}

// FrameReader decodes consecutive CRC frames from a stream.
type FrameReader struct {
	r io.Reader
	// max rejects absurd lengths before allocating (a corrupt header would
	// otherwise demand gigabytes).
	max     uint32
	payload []byte
	offset  int64
}

// NewFrameReader returns a reader over r. maxPayload bounds the accepted
// payload length; 0 uses the journal's own record limit.
func NewFrameReader(r io.Reader, maxPayload int) *FrameReader {
	if maxPayload <= 0 {
		maxPayload = maxRecordBytes
	}
	return &FrameReader{r: r, max: uint32(maxPayload)}
}

// Offset returns the stream offset of the next frame header — after an
// error, the offset of the frame that failed.
func (fr *FrameReader) Offset() int64 { return fr.offset }

// Next returns the next frame's payload, valid until the following call.
// It returns io.EOF at a clean end of stream, ErrTornFrame when the stream
// ends mid-frame, and ErrFrameCorrupt on a CRC mismatch or oversized
// length (both wrapped with detail).
func (fr *FrameReader) Next() ([]byte, error) {
	var header [frameHeader]byte
	if _, err := io.ReadFull(fr.r, header[:]); err != nil {
		if errors.Is(err, io.EOF) && err != io.ErrUnexpectedEOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: partial header at offset %d", ErrTornFrame, fr.offset)
	}
	n := binary.LittleEndian.Uint32(header[:4])
	want := binary.LittleEndian.Uint32(header[4:])
	if n > fr.max {
		return nil, fmt.Errorf("%w: frame length %d exceeds limit %d at offset %d",
			ErrFrameCorrupt, n, fr.max, fr.offset)
	}
	if cap(fr.payload) < int(n) {
		fr.payload = make([]byte, n)
	}
	fr.payload = fr.payload[:n]
	if _, err := io.ReadFull(fr.r, fr.payload); err != nil {
		return nil, fmt.Errorf("%w: partial payload at offset %d", ErrTornFrame, fr.offset)
	}
	if crc32.Checksum(fr.payload, crcTable) != want {
		return nil, fmt.Errorf("%w: CRC mismatch at offset %d", ErrFrameCorrupt, fr.offset)
	}
	fr.offset += frameHeader + int64(n)
	return fr.payload, nil
}
