package journal

import (
	"context"
	"testing"
	"time"
)

func subEntry(contact, spec string) Entry {
	return Entry{Kind: KindSubmit, Time: time.Now().UnixNano(), Contact: contact, Spec: spec, Owner: "u", Identity: "id"}
}

func stateEntry(contact, state string) Entry {
	return Entry{Kind: KindState, Time: time.Now().UnixNano(), Contact: contact, State: state}
}

// TestSubscribeCutIsConsistent: records appended before Subscribe land in
// the backlog, records appended after land on the tap — none in both,
// none in neither.
func TestSubscribeCutIsConsistent(t *testing.T) {
	j, _, err := Open(Options{Dir: t.TempDir(), Fsync: FsyncInterval})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	ctx := context.Background()
	if err := j.Append(ctx, subEntry("c1", "spec1")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(ctx, stateEntry("c1", "ACTIVE")); err != nil {
		t.Fatal(err)
	}

	tap, backlog, err := j.Subscribe(16)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Unsubscribe(tap)

	var backlogBytes int64
	for _, seg := range backlog.Segments {
		backlogBytes += seg.Size
	}
	if backlogBytes == 0 {
		t.Fatal("backlog covers no bytes despite pre-cut appends")
	}

	if err := j.Append(ctx, subEntry("c2", "spec2")); err != nil {
		t.Fatal(err)
	}
	select {
	case rec, ok := <-tap.Records():
		if !ok {
			t.Fatal("tap closed unexpectedly")
		}
		if string(rec) == "" || !containsAll(string(rec), `"c2"`, `"spec2"`) {
			t.Fatalf("live record does not carry the post-cut append: %s", rec)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("post-cut append never reached the tap")
	}
	// The pre-cut records must NOT arrive live.
	select {
	case rec := <-tap.Records():
		t.Fatalf("unexpected extra live record: %s", rec)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestSubscribeSlowFollowerDropped: a tap that never drains overflows
// its buffer and is closed rather than blocking appends.
func TestSubscribeSlowFollowerDropped(t *testing.T) {
	j, _, err := Open(Options{Dir: t.TempDir(), Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	tap, _, err := j.Subscribe(16)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 64; i++ {
		if err := j.Append(ctx, subEntry("c", "s")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(2 * time.Second)
	for {
		select {
		case _, ok := <-tap.Records():
			if !ok {
				return // dropped, as designed
			}
		case <-deadline:
			t.Fatal("overflowing tap was never closed")
		}
	}
}

// TestSubscribeClosedOnJournalClose: closing the journal closes taps.
func TestSubscribeClosedOnJournalClose(t *testing.T) {
	j, _, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	tap, _, err := j.Subscribe(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-tap.Records():
		if ok {
			t.Fatal("expected closed channel")
		}
	case <-time.After(time.Second):
		t.Fatal("tap not closed by journal Close")
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
