package scheduler

import (
	"context"
	"errors"
	"testing"
	"time"
)

// blockingExec is a Func backend whose tasks park until release is closed,
// so tests can hold the queue's slots and backlog at a known occupancy.
func blockingExec(release <-chan struct{}) *Func {
	fn := NewFunc(TrustedMode, Budgets{})
	fn.RegisterFunc("block", func(ctx context.Context, sb *Sandbox, args []string, stdin string) (string, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return "", nil
	})
	return fn
}

func TestQueueMaxPendingSaturates(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	q := NewQueue(QueueConfig{
		Name:       "pbs",
		Slots:      1,
		MaxPending: 2,
		Executor:   blockingExec(release),
	})
	defer q.Close()

	// First task occupies the slot; the backlog then absorbs exactly two.
	if _, err := q.Submit(context.Background(), Task{Executable: "block"}); err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	waitDepth := func(want int) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for q.Depth() != want {
			if time.Now().After(deadline) {
				t.Fatalf("depth = %d, want %d", q.Depth(), want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitDepth(0) // dispatched into the slot
	for i := 0; i < 2; i++ {
		if _, err := q.Submit(context.Background(), Task{Executable: "block"}); err != nil {
			t.Fatalf("backlog submit %d: %v", i, err)
		}
	}
	waitDepth(2)

	_, err := q.Submit(context.Background(), Task{Executable: "block"})
	var sat *SaturatedError
	if !errors.As(err, &sat) {
		t.Fatalf("want SaturatedError, got %v", err)
	}
	if sat.Backend != "pbs" || sat.Depth != 2 {
		t.Fatalf("SaturatedError = %+v", sat)
	}
	if sat.RetryAfter <= 0 || sat.RetryAfter > 5*time.Second {
		t.Fatalf("retry-after out of range: %s", sat.RetryAfter)
	}
}

func TestQueueUnboundedByDefault(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	q := NewQueue(QueueConfig{Name: "pbs", Slots: 1, Executor: blockingExec(release)})
	defer q.Close()
	for i := 0; i < 32; i++ {
		if _, err := q.Submit(context.Background(), Task{Executable: "block"}); err != nil {
			t.Fatalf("submit %d on unbounded queue: %v", i, err)
		}
	}
}
