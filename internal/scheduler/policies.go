package scheduler

import (
	"sync"
	"time"
)

// FIFO dispatches strictly in arrival order — the default behaviour of a
// PBS execution queue.
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "fifo" }

// Next implements Policy.
func (FIFO) Next(pending []*QueuedTask) int {
	if len(pending) == 0 {
		return -1
	}
	return 0
}

// Started implements Policy.
func (FIFO) Started(*QueuedTask) {}

// Finished implements Policy.
func (FIFO) Finished(*QueuedTask, time.Duration) {}

// PriorityPolicy dispatches the highest-priority pending task, arrival
// order breaking ties — LSF-style static priority scheduling.
type PriorityPolicy struct{}

// Name implements Policy.
func (PriorityPolicy) Name() string { return "priority" }

// Next implements Policy.
func (PriorityPolicy) Next(pending []*QueuedTask) int {
	best := -1
	for i, t := range pending {
		if best < 0 || t.Task.Priority > pending[best].Task.Priority {
			best = i
		}
	}
	return best
}

// Started implements Policy.
func (PriorityPolicy) Started(*QueuedTask) {}

// Finished implements Policy.
func (PriorityPolicy) Finished(*QueuedTask, time.Duration) {}

// Fairshare dispatches the pending task whose owner has consumed the least
// runtime so far, with static priority breaking ties — the dynamic
// user-share scheduling LSF performs. Usage decays multiplicatively each
// dispatch so past consumption matters less over time.
type Fairshare struct {
	// Decay is the multiplicative usage decay applied on every dispatch
	// decision; 1 disables decay, values in (0,1) forget history. A zero
	// value means the default of 0.99.
	Decay float64

	mu    sync.Mutex
	usage map[string]float64 // owner -> decayed runtime seconds
}

// Name implements Policy.
func (f *Fairshare) Name() string { return "fairshare" }

func (f *Fairshare) decay() float64 {
	if f.Decay == 0 {
		return 0.99
	}
	return f.Decay
}

// Next implements Policy.
func (f *Fairshare) Next(pending []*QueuedTask) int {
	if len(pending) == 0 {
		return -1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.usage == nil {
		f.usage = make(map[string]float64)
	}
	d := f.decay()
	for owner := range f.usage {
		f.usage[owner] *= d
	}
	best := -1
	for i, t := range pending {
		if best < 0 {
			best = i
			continue
		}
		ui, ub := f.usage[t.Task.Owner], f.usage[pending[best].Task.Owner]
		switch {
		case ui < ub:
			best = i
		case ui == ub && t.Task.Priority > pending[best].Task.Priority:
			best = i
		}
	}
	return best
}

// Started implements Policy.
func (f *Fairshare) Started(*QueuedTask) {}

// Finished implements Policy by charging the owner's share.
func (f *Fairshare) Finished(t *QueuedTask, runtime time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.usage == nil {
		f.usage = make(map[string]float64)
	}
	f.usage[t.Task.Owner] += runtime.Seconds()
}

// Usage returns the decayed usage recorded for owner.
func (f *Fairshare) Usage(owner string) float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.usage[owner]
}

// NewPBS builds a PBS-style backend: FIFO dispatch over named queues with
// walltime limits.
func NewPBS(slots int, queues map[string]QueueLimits, exec Backend) *Queue {
	return NewQueue(QueueConfig{
		Name:     "pbs",
		Slots:    slots,
		Policy:   FIFO{},
		Queues:   queues,
		Executor: exec,
	})
}

// NewLSF builds an LSF-style backend: fairshare dispatch with priority
// tie-breaking.
func NewLSF(slots int, exec Backend) *Queue {
	return NewQueue(QueueConfig{
		Name:     "lsf",
		Slots:    slots,
		Policy:   &Fairshare{},
		Executor: exec,
	})
}
