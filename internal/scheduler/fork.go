package scheduler

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os/exec"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Fork executes tasks as child processes, the Unix "fork" scheduler
// interface of GRAM (paper §2). The zero value is ready to use.
type Fork struct {
	// MaxOutput bounds captured stdout/stderr bytes each; 0 means the
	// default of 1 MiB.
	MaxOutput int
}

// Name implements Backend.
func (*Fork) Name() string { return "fork" }

// forkHandle extends the basic handle with suspend/resume, delivered as
// SIGSTOP/SIGCONT to the child's process group so shell pipelines stop as
// a whole.
type forkHandle struct {
	*resultHandle
	mu  sync.Mutex
	pid int // process-group leader; 0 when not running
}

var _ Suspender = (*forkHandle)(nil)

func (h *forkHandle) signal(sig syscall.Signal) error {
	h.mu.Lock()
	pid := h.pid
	h.mu.Unlock()
	if pid == 0 {
		return errors.New("scheduler: fork: process not running")
	}
	if err := syscall.Kill(-pid, sig); err != nil {
		return fmt.Errorf("scheduler: fork: signal: %w", err)
	}
	return nil
}

// Suspend stops the child with SIGSTOP.
func (h *forkHandle) Suspend() error { return h.signal(syscall.SIGSTOP) }

// Resume continues the child with SIGCONT.
func (h *forkHandle) Resume() error { return h.signal(syscall.SIGCONT) }

// Submit implements Backend by starting the process immediately.
func (f *Fork) Submit(ctx context.Context, t Task) (Handle, error) {
	if t.Executable == "" {
		return nil, errors.New("scheduler: fork: empty executable")
	}
	runCtx, cancel := context.WithCancel(ctx)
	h := &forkHandle{resultHandle: newResultHandle(cancel)}
	maxOut := f.MaxOutput
	if maxOut <= 0 {
		maxOut = 1 << 20
	}
	go func() {
		defer cancel()
		start := time.Now()
		cmd := exec.CommandContext(runCtx, t.Executable, t.Args...)
		cmd.Dir = t.Dir
		env := t.Env
		if t.Checkpoint != "" {
			// Forked processes receive their restart checkpoint through
			// the environment.
			env = make(map[string]string, len(t.Env)+1)
			for k, v := range t.Env {
				env[k] = v
			}
			env["INFOGRAM_CHECKPOINT"] = t.Checkpoint
		}
		if len(env) > 0 {
			cmd.Env = flattenEnv(env)
		}
		if t.Stdin != "" {
			cmd.Stdin = strings.NewReader(t.Stdin)
		}
		stdout := &limitedBuffer{max: maxOut}
		stderr := &limitedBuffer{max: maxOut}
		cmd.Stdout = stdout
		cmd.Stderr = stderr
		// Each job leads its own process group so suspend/cancel reach
		// the whole tree, not just the immediate child.
		cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
		cmd.Cancel = func() error {
			return syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL)
		}

		err := cmd.Start()
		if err == nil {
			h.mu.Lock()
			h.pid = cmd.Process.Pid
			h.mu.Unlock()
			err = cmd.Wait()
			h.mu.Lock()
			h.pid = 0
			h.mu.Unlock()
		}
		res := Result{
			Stdout:     stdout.String(),
			Stderr:     stderr.String(),
			StartedAt:  start,
			FinishedAt: time.Now(),
		}
		switch {
		case err == nil:
			h.finish(res, nil)
		case runCtx.Err() != nil:
			h.finish(res, fmt.Errorf("scheduler: fork: cancelled: %w", runCtx.Err()))
		default:
			var exitErr *exec.ExitError
			if errors.As(err, &exitErr) {
				res.ExitCode = exitErr.ExitCode()
				h.finish(res, nil)
			} else {
				h.finish(res, fmt.Errorf("scheduler: fork: %w", err))
			}
		}
	}()
	return h, nil
}

// flattenEnv converts an env map to sorted KEY=VALUE form.
func flattenEnv(env map[string]string) []string {
	out := make([]string, 0, len(env))
	for k, v := range env {
		out = append(out, k+"="+v)
	}
	sort.Strings(out)
	return out
}

// limitedBuffer captures at most max bytes and discards the rest, keeping
// job managers safe from chatty jobs.
type limitedBuffer struct {
	buf       bytes.Buffer
	max       int
	truncated bool
}

// Write implements io.Writer.
func (lb *limitedBuffer) Write(p []byte) (int, error) {
	room := lb.max - lb.buf.Len()
	if room > 0 {
		if len(p) > room {
			lb.buf.Write(p[:room])
			lb.truncated = true
		} else {
			lb.buf.Write(p)
		}
	} else if len(p) > 0 {
		lb.truncated = true
	}
	return len(p), nil
}

// String returns the captured output, with a marker when truncated.
func (lb *limitedBuffer) String() string {
	if lb.truncated {
		return lb.buf.String() + "\n[output truncated]"
	}
	return lb.buf.String()
}
