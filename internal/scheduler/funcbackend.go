package scheduler

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// JobFunc is an in-process job: the Go analog of a Java application
// submitted as a jar and executed inside the service's JVM (paper §7,
// "(executable=myjavaapplication.jar)"). The function receives a Sandbox
// whose budgets are enforced in restricted mode; well-behaved jobs call
// sb.Step and sb.Alloc as they work.
type JobFunc func(ctx context.Context, sb *Sandbox, args []string, stdin string) (stdout string, err error)

// ExecMode selects how in-process jobs run, the administrator's choice the
// paper describes: "one method is to execute the code in the same JVM ...
// An alternative is to separate the execution of the job ... to increase
// security. We provide the ability to configure the job manager to run in
// either of these modes."
type ExecMode int

// Execution modes for the Func backend.
const (
	// TrustedMode runs the function with unlimited budgets, like
	// executing a trusted jar in the service JVM.
	TrustedMode ExecMode = iota
	// RestrictedMode enforces the sandbox budgets (steps, allocation,
	// wall time) and converts panics into job failures, like running an
	// untrusted jar in a separate restricted JVM.
	RestrictedMode
)

// String renders the mode.
func (m ExecMode) String() string {
	if m == RestrictedMode {
		return "restricted"
	}
	return "trusted"
}

// Budgets bounds a restricted job.
type Budgets struct {
	// Steps is the cooperative CPU budget: the job fails once it has
	// called Sandbox.Step more than this many times. 0 means unlimited.
	Steps int64
	// AllocBytes bounds the bytes the job may account via Sandbox.Alloc.
	// 0 means unlimited.
	AllocBytes int64
	// WallTime bounds total runtime. 0 means unlimited.
	WallTime time.Duration
}

// DefaultBudgets are the restricted-mode defaults.
var DefaultBudgets = Budgets{
	Steps:      10_000_000,
	AllocBytes: 64 << 20,
	WallTime:   30 * time.Second,
}

// BudgetError reports a sandbox budget violation.
type BudgetError struct {
	Resource string
	Limit    int64
}

// Error implements the error interface.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("scheduler: sandbox %s budget exceeded (limit %d)", e.Resource, e.Limit)
}

// Sandbox is the capability handed to an in-process job. In trusted mode
// its budget checks are no-ops; in restricted mode they terminate the job
// with a BudgetError.
type Sandbox struct {
	mode     ExecMode
	budgets  Budgets
	steps    atomic.Int64
	alloc    atomic.Int64
	out      strings.Builder
	outMu    sync.Mutex
	restored string
	onCkpt   func(string)
}

// Mode returns the execution mode of the job.
func (sb *Sandbox) Mode() ExecMode { return sb.mode }

// Step accounts one unit of work and returns a BudgetError once the step
// budget is exhausted in restricted mode.
func (sb *Sandbox) Step() error {
	n := sb.steps.Add(1)
	if sb.mode == RestrictedMode && sb.budgets.Steps > 0 && n > sb.budgets.Steps {
		return &BudgetError{Resource: "step", Limit: sb.budgets.Steps}
	}
	return nil
}

// StepN accounts n units of work at once.
func (sb *Sandbox) StepN(n int64) error {
	total := sb.steps.Add(n)
	if sb.mode == RestrictedMode && sb.budgets.Steps > 0 && total > sb.budgets.Steps {
		return &BudgetError{Resource: "step", Limit: sb.budgets.Steps}
	}
	return nil
}

// Alloc accounts n bytes of allocation.
func (sb *Sandbox) Alloc(n int64) error {
	total := sb.alloc.Add(n)
	if sb.mode == RestrictedMode && sb.budgets.AllocBytes > 0 && total > sb.budgets.AllocBytes {
		return &BudgetError{Resource: "memory", Limit: sb.budgets.AllocBytes}
	}
	return nil
}

// Steps returns the accounted work units.
func (sb *Sandbox) Steps() int64 { return sb.steps.Load() }

// Allocated returns the accounted allocation bytes.
func (sb *Sandbox) Allocated() int64 { return sb.alloc.Load() }

// Printf appends formatted text to the job's stdout.
func (sb *Sandbox) Printf(format string, args ...any) {
	sb.outMu.Lock()
	fmt.Fprintf(&sb.out, format, args...)
	sb.outMu.Unlock()
}

// Restored returns the checkpoint blob a restarted job resumes from, or ""
// on a fresh start.
func (sb *Sandbox) Restored() string { return sb.restored }

// Checkpoint emits a checkpoint blob; the job manager persists it so a
// restarted service can resume the job from here (paper §10: "automatic
// restart capabilities enabled through checkpointing").
func (sb *Sandbox) Checkpoint(data string) {
	if sb.onCkpt != nil {
		sb.onCkpt(data)
	}
}

// Func executes registered functions in-process.
type Func struct {
	mode    ExecMode
	budgets Budgets

	mu    sync.RWMutex
	funcs map[string]JobFunc
}

// NewFunc creates a Func backend in the given mode; budgets apply only in
// RestrictedMode (zero budgets fall back to DefaultBudgets).
func NewFunc(mode ExecMode, budgets Budgets) *Func {
	if budgets == (Budgets{}) {
		budgets = DefaultBudgets
	}
	return &Func{mode: mode, budgets: budgets, funcs: make(map[string]JobFunc)}
}

// Name implements Backend.
func (f *Func) Name() string { return "func" }

// Mode returns the configured execution mode.
func (f *Func) Mode() ExecMode { return f.mode }

// RegisterFunc makes fn submittable under name. Registration replaces any
// previous function of the same name.
func (f *Func) RegisterFunc(name string, fn JobFunc) {
	f.mu.Lock()
	f.funcs[name] = fn
	f.mu.Unlock()
}

// Registered returns the registered function names, sorted.
func (f *Func) Registered() []string {
	f.mu.RLock()
	out := make([]string, 0, len(f.funcs))
	for n := range f.funcs {
		out = append(out, n)
	}
	f.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Submit implements Backend.
func (f *Func) Submit(ctx context.Context, t Task) (Handle, error) {
	f.mu.RLock()
	fn, ok := f.funcs[t.Executable]
	f.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("scheduler: func: no registered function %q", t.Executable)
	}

	runCtx, cancel := context.WithCancel(ctx)
	if f.mode == RestrictedMode && f.budgets.WallTime > 0 {
		runCtx, cancel = context.WithTimeout(ctx, f.budgets.WallTime)
	}
	h := newResultHandle(cancel)
	sb := &Sandbox{
		mode:     f.mode,
		budgets:  f.budgets,
		restored: t.Checkpoint,
		onCkpt:   t.OnCheckpoint,
	}

	go func() {
		defer cancel()
		start := time.Now()
		stdout, err := runGuarded(runCtx, f.mode, fn, sb, t)
		res := Result{
			Stdout:     stdout,
			StartedAt:  start,
			FinishedAt: time.Now(),
		}
		if err != nil {
			// In-process jobs report failure through the exit code the
			// way a crashed process would, keeping the job-manager
			// contract uniform across backends.
			res.ExitCode = 1
			res.Stderr = err.Error()
		}
		h.finish(res, nil)
	}()
	return h, nil
}

// runGuarded invokes fn, converting panics to errors in restricted mode
// (and in trusted mode too — the service must survive, but the failure is
// labelled as a trusted-code fault).
func runGuarded(ctx context.Context, mode ExecMode, fn JobFunc, sb *Sandbox, t Task) (stdout string, err error) {
	defer func() {
		if r := recover(); r != nil {
			if mode == RestrictedMode {
				err = fmt.Errorf("scheduler: sandboxed job panicked: %v", r)
			} else {
				err = fmt.Errorf("scheduler: trusted job panicked (service fault): %v", r)
			}
			sb.outMu.Lock()
			stdout = sb.out.String()
			sb.outMu.Unlock()
		}
	}()
	out, err := fn(ctx, sb, t.Args, t.Stdin)
	sb.outMu.Lock()
	pre := sb.out.String()
	sb.outMu.Unlock()
	if pre != "" {
		out = pre + out
	}
	if err == nil && ctx.Err() != nil {
		err = fmt.Errorf("scheduler: job cancelled: %w", ctx.Err())
	}
	return out, err
}
