package scheduler

import (
	"context"
	"fmt"
	"sync"
	"time"

	"infogram/internal/metrics"
)

// Machine is a Condor-style resource advertisement: a named machine with
// attributes (the ClassAd analog) and a slot count.
type Machine struct {
	Name  string
	Attrs map[string]string
	Slots int
}

// Condor is a matchmaking backend: pending tasks are matched against
// machine advertisements; a task runs on the first machine satisfying all
// of its Requirements with a free slot. This models the Condor scheduler
// interface GRAM exposes (paper §2) closely enough to exercise
// requirement-driven placement.
type Condor struct {
	executor Backend
	waits    *metrics.Series

	mu       sync.Mutex
	cond     *sync.Cond
	machines []*machineState
	pending  []*QueuedTask
	closed   bool
}

type machineState struct {
	m    Machine
	busy int
}

// NewCondor creates a matchmaker over the given machines; exec runs
// matched tasks (defaults to Fork).
func NewCondor(machines []Machine, exec Backend) *Condor {
	if exec == nil {
		exec = &Fork{}
	}
	c := &Condor{executor: exec, waits: &metrics.Series{}}
	c.cond = sync.NewCond(&c.mu)
	for _, m := range machines {
		if m.Slots <= 0 {
			m.Slots = 1
		}
		c.machines = append(c.machines, &machineState{m: m})
	}
	go c.matchLoop()
	return c
}

// Name implements Backend.
func (*Condor) Name() string { return "condor" }

// WaitStats returns matchmaking-wait statistics.
func (c *Condor) WaitStats() metrics.Stats { return c.waits.Snapshot() }

// Depth returns the number of unmatched tasks.
func (c *Condor) Depth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Close stops the matchmaker; unmatched tasks fail.
func (c *Condor) Close() {
	c.mu.Lock()
	c.closed = true
	pending := c.pending
	c.pending = nil
	c.mu.Unlock()
	c.cond.Broadcast()
	for _, t := range pending {
		t.h.finish(Result{}, fmt.Errorf("scheduler: condor: matchmaker closed"))
	}
}

// Submit implements Backend. A task whose requirements can never be
// satisfied by any advertised machine is rejected immediately rather than
// queued forever.
func (c *Condor) Submit(ctx context.Context, t Task) (Handle, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("scheduler: condor: matchmaker closed")
	}
	satisfiable := false
	for _, ms := range c.machines {
		if matches(t.Requirements, ms.m.Attrs) {
			satisfiable = true
			break
		}
	}
	if !satisfiable {
		c.mu.Unlock()
		return nil, fmt.Errorf("scheduler: condor: no machine satisfies requirements %v", t.Requirements)
	}
	qt := &QueuedTask{
		Task:      t,
		Enqueued:  time.Now(),
		ctx:       ctx,
		cancelled: make(chan struct{}),
	}
	qt.h = newResultHandle(qt.cancel)
	c.pending = append(c.pending, qt)
	c.mu.Unlock()
	c.cond.Signal()
	return qt.h, nil
}

// matches reports whether attrs satisfy every requirement exactly.
func matches(reqs, attrs map[string]string) bool {
	for k, want := range reqs {
		if attrs[k] != want {
			return false
		}
	}
	return true
}

// matchLoop pairs pending tasks with free machines, first-fit in arrival
// order.
func (c *Condor) matchLoop() {
	for {
		c.mu.Lock()
		var qt *QueuedTask
		var ms *machineState
		for !c.closed {
			qt, ms = c.findMatch()
			if qt != nil {
				break
			}
			c.cond.Wait()
		}
		if c.closed {
			c.mu.Unlock()
			return
		}
		ms.busy++
		c.mu.Unlock()
		go c.run(qt, ms)
	}
}

// findMatch scans pending tasks in order for one a free machine can serve,
// dropping cancelled entries as it goes. Caller holds c.mu.
func (c *Condor) findMatch() (*QueuedTask, *machineState) {
	alive := c.pending[:0]
	var matchedTask *QueuedTask
	var matchedMachine *machineState
	for i, t := range c.pending {
		cancelled := false
		select {
		case <-t.cancelled:
			cancelled = true
		default:
			select {
			case <-t.ctx.Done():
				cancelled = true
			default:
			}
		}
		if cancelled {
			go t.h.finish(Result{}, fmt.Errorf("scheduler: condor: cancelled while queued"))
			continue
		}
		if matchedTask == nil {
			for _, ms := range c.machines {
				if ms.busy < ms.m.Slots && matches(t.Task.Requirements, ms.m.Attrs) {
					matchedTask, matchedMachine = t, ms
					break
				}
			}
			if matchedTask == t {
				// Keep the rest of the queue intact.
				alive = append(alive, c.pending[i+1:]...)
				c.pending = alive
				return matchedTask, matchedMachine
			}
		}
		alive = append(alive, t)
	}
	c.pending = alive
	return nil, nil
}

// run executes a matched task and releases the machine slot.
func (c *Condor) run(qt *QueuedTask, ms *machineState) {
	wait := time.Since(qt.Enqueued)
	c.waits.Observe(wait)

	inner, err := c.executor.Submit(qt.ctx, qt.Task)
	var res Result
	if err == nil {
		done := make(chan struct{})
		go func() {
			select {
			case <-qt.cancelled:
				inner.Cancel()
			case <-done:
			}
		}()
		res, err = inner.Wait(qt.ctx)
		close(done)
	}
	res.QueueWait = wait
	res.Machine = ms.m.Name

	c.mu.Lock()
	ms.busy--
	c.mu.Unlock()
	c.cond.Broadcast()

	if err != nil {
		qt.h.finish(res, fmt.Errorf("scheduler: condor: %w", err))
		return
	}
	qt.h.finish(res, nil)
}
