package scheduler

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"infogram/internal/faultinject"
	"infogram/internal/metrics"
	"infogram/internal/telemetry"
)

// Policy orders a batch queue's pending tasks. Implementations pick which
// pending task runs next when a slot frees up.
type Policy interface {
	// Name identifies the policy.
	Name() string
	// Next returns the index of the task to dispatch next, or -1 to leave
	// everything queued. pending is in submission order.
	Next(pending []*QueuedTask) int
	// Started informs the policy that pending[idx] began executing, so
	// stateful policies (fairshare) can account usage.
	Started(t *QueuedTask)
	// Finished informs the policy that a task completed after the given
	// runtime.
	Finished(t *QueuedTask, runtime time.Duration)
}

// QueuedTask is a pending queue entry visible to policies.
type QueuedTask struct {
	Task     Task
	Enqueued time.Time

	h         *resultHandle
	ctx       context.Context
	cancelled chan struct{}
	once      sync.Once
}

func (q *QueuedTask) cancel() {
	q.once.Do(func() { close(q.cancelled) })
}

// SaturatedError reports a submission refused because the scheduler's
// backlog is full. It is backpressure, not failure: the gatekeeper maps it
// to a pre-execution REJECT frame carrying RetryAfter, so clients back off
// instead of piling more work onto a queue that cannot drain.
type SaturatedError struct {
	// Backend names the saturated scheduler.
	Backend string
	// Depth is the pending backlog observed at refusal.
	Depth int
	// RetryAfter estimates when a slot is likely to free up.
	RetryAfter time.Duration
}

// Error implements the error interface.
func (e *SaturatedError) Error() string {
	return fmt.Sprintf("scheduler: %s: backlog saturated (%d pending, retry after %s)",
		e.Backend, e.Depth, e.RetryAfter)
}

// QueueLimits configures one named sub-queue of a batch system.
type QueueLimits struct {
	// MaxWallTime rejects tasks whose EstRuntime exceeds it; 0 means
	// unlimited (like a PBS queue's resources_max.walltime).
	MaxWallTime time.Duration
}

// QueueConfig configures a Queue backend.
type QueueConfig struct {
	// Name is the backend name reported to clients ("pbs", "lsf").
	Name string
	// Slots is the number of concurrently executing tasks; defaults to 1.
	Slots int
	// Policy orders pending tasks; defaults to FIFO.
	Policy Policy
	// Queues optionally defines named sub-queues with limits. When
	// non-empty, tasks must name an existing queue (an empty task queue
	// maps to "default" if defined).
	Queues map[string]QueueLimits
	// MaxPending bounds the backlog: a Submit that would push the pending
	// list beyond it fails with a SaturatedError instead of queueing,
	// giving the gatekeeper something to convert into client backpressure.
	// Zero keeps the backlog unbounded.
	MaxPending int
	// Executor runs dispatched tasks; defaults to a Fork backend.
	Executor Backend
	// DepthGauge optionally mirrors the pending-task count into a
	// telemetry gauge.
	DepthGauge *telemetry.Gauge
	// DispatchLatency optionally records queue-wait time (enqueue to
	// dispatch) per task.
	DispatchLatency *telemetry.Histogram
}

// Queue is a slot-limited batch scheduler: the discrete simulation of a
// PBS- or LSF-class local resource manager behind the GRAM backend
// interface (paper §2). Tasks wait in a pending list; a dispatcher fills
// free slots according to the policy; queue-wait times are recorded for
// the E15 experiment.
type Queue struct {
	cfg   QueueConfig
	waits *metrics.Series

	mu      sync.Mutex
	cond    *sync.Cond
	pending []*QueuedTask
	running int
	closed  bool
}

// NewQueue creates and starts a batch queue backend.
func NewQueue(cfg QueueConfig) *Queue {
	if cfg.Slots <= 0 {
		cfg.Slots = 1
	}
	if cfg.Policy == nil {
		cfg.Policy = FIFO{}
	}
	if cfg.Executor == nil {
		cfg.Executor = &Fork{}
	}
	if cfg.Name == "" {
		cfg.Name = "queue"
	}
	q := &Queue{cfg: cfg, waits: &metrics.Series{}}
	q.cond = sync.NewCond(&q.mu)
	go q.dispatch()
	return q
}

// Name implements Backend.
func (q *Queue) Name() string { return q.cfg.Name }

// PolicyName returns the configured policy's name.
func (q *Queue) PolicyName() string { return q.cfg.Policy.Name() }

// WaitStats returns queue-wait statistics across completed dispatches.
func (q *Queue) WaitStats() metrics.Stats { return q.waits.Snapshot() }

// Depth returns the number of pending (not yet running) tasks.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

// syncDepthLocked mirrors the pending count into the telemetry gauge.
// Caller holds q.mu.
func (q *Queue) syncDepthLocked() {
	q.cfg.DepthGauge.Set(int64(len(q.pending)))
}

// Close stops the dispatcher; queued tasks fail, running tasks continue.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	pending := q.pending
	q.pending = nil
	q.syncDepthLocked()
	q.mu.Unlock()
	q.cond.Broadcast()
	for _, t := range pending {
		t.h.finish(Result{}, fmt.Errorf("scheduler: %s: queue closed", q.cfg.Name))
	}
}

// Submit implements Backend: the task is validated against queue limits
// and parked until the policy dispatches it.
func (q *Queue) Submit(ctx context.Context, t Task) (Handle, error) {
	if len(q.cfg.Queues) > 0 {
		name := t.Queue
		if name == "" {
			name = "default"
		}
		lim, ok := q.cfg.Queues[name]
		if !ok {
			return nil, fmt.Errorf("scheduler: %s: unknown queue %q", q.cfg.Name, name)
		}
		if lim.MaxWallTime > 0 && t.EstRuntime > lim.MaxWallTime {
			return nil, fmt.Errorf("scheduler: %s: queue %q walltime limit %s exceeded by request for %s",
				q.cfg.Name, name, lim.MaxWallTime, t.EstRuntime)
		}
	}

	qt := &QueuedTask{
		Task:      t,
		Enqueued:  time.Now(),
		ctx:       ctx,
		cancelled: make(chan struct{}),
	}
	qt.h = newResultHandle(qt.cancel)

	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil, fmt.Errorf("scheduler: %s: queue closed", q.cfg.Name)
	}
	if q.cfg.MaxPending > 0 && len(q.pending) >= q.cfg.MaxPending {
		depth := len(q.pending)
		q.mu.Unlock()
		return nil, &SaturatedError{
			Backend:    q.cfg.Name,
			Depth:      depth,
			RetryAfter: q.drainEstimate(depth),
		}
	}
	q.pending = append(q.pending, qt)
	q.syncDepthLocked()
	q.mu.Unlock()
	q.cond.Signal()
	return qt.h, nil
}

// drainEstimate guesses how long until the backlog has room again: the
// mean observed queue wait scaled by how many dispatch rounds stand ahead,
// falling back to a modest constant before any dispatch has completed.
// It is a hint for REJECT retry-after, not a promise.
func (q *Queue) drainEstimate(depth int) time.Duration {
	st := q.waits.Snapshot()
	est := st.Mean
	if st.Count == 0 || est <= 0 {
		est = 100 * time.Millisecond
	}
	est *= time.Duration(1 + depth/q.cfg.Slots)
	if est > 5*time.Second {
		est = 5 * time.Second
	}
	return est
}

// dispatch is the scheduler loop: one goroutine owns slot accounting.
func (q *Queue) dispatch() {
	for {
		q.mu.Lock()
		for !q.closed && (len(q.pending) == 0 || q.running >= q.cfg.Slots) {
			q.cond.Wait()
		}
		if q.closed {
			q.mu.Unlock()
			return
		}
		// Drop cancelled tasks before consulting the policy.
		alive := q.pending[:0]
		var dropped []*QueuedTask
		for _, t := range q.pending {
			select {
			case <-t.cancelled:
				dropped = append(dropped, t)
			default:
				select {
				case <-t.ctx.Done():
					dropped = append(dropped, t)
				default:
					alive = append(alive, t)
				}
			}
		}
		q.pending = alive
		q.syncDepthLocked()
		if len(q.pending) == 0 {
			q.mu.Unlock()
			for _, t := range dropped {
				t.h.finish(Result{}, fmt.Errorf("scheduler: %s: cancelled while queued", q.cfg.Name))
			}
			continue
		}
		idx := q.cfg.Policy.Next(q.pending)
		if idx < 0 || idx >= len(q.pending) {
			q.mu.Unlock()
			for _, t := range dropped {
				t.h.finish(Result{}, fmt.Errorf("scheduler: %s: cancelled while queued", q.cfg.Name))
			}
			continue
		}
		qt := q.pending[idx]
		q.pending = append(q.pending[:idx], q.pending[idx+1:]...)
		q.syncDepthLocked()
		q.running++
		q.cfg.Policy.Started(qt)
		q.mu.Unlock()

		for _, t := range dropped {
			t.h.finish(Result{}, fmt.Errorf("scheduler: %s: cancelled while queued", q.cfg.Name))
		}
		go q.run(qt)
	}
}

// run executes one dispatched task on the inner executor. A traced task
// records a "scheduler.dispatch" span covering the executor run, with
// the queue wait recorded as an attribute.
func (q *Queue) run(qt *QueuedTask) {
	wait := time.Since(qt.Enqueued)
	q.waits.Observe(wait)
	q.cfg.DispatchLatency.Observe(wait)
	start := time.Now()

	ctx, sp := telemetry.StartSpan(qt.ctx, "scheduler.dispatch")
	sp.SetAttr("queue", q.cfg.Name)
	sp.SetAttr("wait_us", strconv.FormatInt(wait.Microseconds(), 10))

	var res Result
	var inner Handle
	_, err := faultinject.Eval(ctx, faultinject.SchedulerDispatch)
	if err == nil {
		inner, err = q.cfg.Executor.Submit(ctx, qt.Task)
	}
	if err == nil {
		// Honour cancellation while running.
		done := make(chan struct{})
		go func() {
			select {
			case <-qt.cancelled:
				inner.Cancel()
			case <-done:
			}
		}()
		res, err = inner.Wait(ctx)
		close(done)
	}
	res.QueueWait = wait
	runtime := time.Since(start)
	if err != nil {
		sp.Fail(err.Error())
	}
	sp.End()

	q.mu.Lock()
	q.running--
	q.cfg.Policy.Finished(qt, runtime)
	q.mu.Unlock()
	q.cond.Signal()

	if err != nil {
		qt.h.finish(res, fmt.Errorf("scheduler: %s: %w", q.cfg.Name, err))
		return
	}
	qt.h.finish(res, nil)
}
