package scheduler

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func waitRes(t *testing.T, h Handle) Result {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := h.Wait(ctx)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	return res
}

func TestForkEcho(t *testing.T) {
	f := &Fork{}
	h, err := f.Submit(context.Background(), Task{Executable: "/bin/echo", Args: []string{"hello"}})
	if err != nil {
		t.Fatal(err)
	}
	res := waitRes(t, h)
	if res.ExitCode != 0 || strings.TrimSpace(res.Stdout) != "hello" {
		t.Errorf("res = %+v", res)
	}
}

func TestForkExitCode(t *testing.T) {
	f := &Fork{}
	h, err := f.Submit(context.Background(), Task{Executable: "/bin/sh", Args: []string{"-c", "exit 3"}})
	if err != nil {
		t.Fatal(err)
	}
	res := waitRes(t, h)
	if res.ExitCode != 3 {
		t.Errorf("ExitCode = %d", res.ExitCode)
	}
}

func TestForkStdinAndEnv(t *testing.T) {
	f := &Fork{}
	h, err := f.Submit(context.Background(), Task{
		Executable: "/bin/sh",
		Args:       []string{"-c", `read line; echo "got:$line:$MYVAR"`},
		Stdin:      "input-line\n",
		Env:        map[string]string{"MYVAR": "v1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := waitRes(t, h)
	if strings.TrimSpace(res.Stdout) != "got:input-line:v1" {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestForkDir(t *testing.T) {
	dir := t.TempDir()
	f := &Fork{}
	h, err := f.Submit(context.Background(), Task{Executable: "/bin/pwd", Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	res := waitRes(t, h)
	if strings.TrimSpace(res.Stdout) != dir {
		t.Errorf("pwd = %q, want %q", res.Stdout, dir)
	}
}

func TestForkStderr(t *testing.T) {
	f := &Fork{}
	h, err := f.Submit(context.Background(), Task{
		Executable: "/bin/sh", Args: []string{"-c", "echo oops >&2; exit 1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := waitRes(t, h)
	if res.ExitCode != 1 || strings.TrimSpace(res.Stderr) != "oops" {
		t.Errorf("res = %+v", res)
	}
}

func TestForkMissingBinary(t *testing.T) {
	f := &Fork{}
	h, err := f.Submit(context.Background(), Task{Executable: "/no/such/bin"})
	if err != nil {
		t.Fatal(err) // submit is async; error surfaces at Wait
	}
	if _, err := h.Wait(context.Background()); err == nil {
		t.Error("expected error for missing binary")
	}
	if _, err := f.Submit(context.Background(), Task{}); err == nil {
		t.Error("empty executable accepted")
	}
}

func TestForkCancel(t *testing.T) {
	f := &Fork{}
	h, err := f.Submit(context.Background(), Task{Executable: "/bin/sleep", Args: []string{"30"}})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		h.Cancel()
	}()
	start := time.Now()
	if _, err := h.Wait(context.Background()); err == nil {
		t.Error("cancelled job reported success")
	}
	if time.Since(start) > 5*time.Second {
		t.Error("cancel did not stop the process promptly")
	}
}

func TestForkOutputTruncation(t *testing.T) {
	f := &Fork{MaxOutput: 64}
	h, err := f.Submit(context.Background(), Task{
		Executable: "/bin/sh", Args: []string{"-c", "yes x | head -c 10000"},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := waitRes(t, h)
	if !strings.Contains(res.Stdout, "[output truncated]") {
		t.Errorf("no truncation marker in %d bytes", len(res.Stdout))
	}
	if len(res.Stdout) > 200 {
		t.Errorf("stdout not bounded: %d bytes", len(res.Stdout))
	}
}

func TestFuncBackendBasic(t *testing.T) {
	fn := NewFunc(TrustedMode, Budgets{})
	fn.RegisterFunc("greet", func(ctx context.Context, sb *Sandbox, args []string, stdin string) (string, error) {
		return "hi " + strings.Join(args, ","), nil
	})
	h, err := fn.Submit(context.Background(), Task{Executable: "greet", Args: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	res := waitRes(t, h)
	if res.ExitCode != 0 || res.Stdout != "hi a,b" {
		t.Errorf("res = %+v", res)
	}
	if got := fn.Registered(); len(got) != 1 || got[0] != "greet" {
		t.Errorf("Registered = %v", got)
	}
}

func TestFuncBackendUnknown(t *testing.T) {
	fn := NewFunc(TrustedMode, Budgets{})
	if _, err := fn.Submit(context.Background(), Task{Executable: "ghost"}); err == nil {
		t.Error("unknown function accepted")
	}
}

func TestFuncBackendErrorBecomesExitCode(t *testing.T) {
	fn := NewFunc(TrustedMode, Budgets{})
	fn.RegisterFunc("bad", func(ctx context.Context, sb *Sandbox, args []string, stdin string) (string, error) {
		return "", errors.New("application error")
	})
	h, _ := fn.Submit(context.Background(), Task{Executable: "bad"})
	res := waitRes(t, h)
	if res.ExitCode != 1 || !strings.Contains(res.Stderr, "application error") {
		t.Errorf("res = %+v", res)
	}
}

func TestSandboxStepBudget(t *testing.T) {
	// E13: an untrusted hog is stopped in restricted mode and allowed in
	// trusted mode.
	hog := func(ctx context.Context, sb *Sandbox, args []string, stdin string) (string, error) {
		for i := 0; i < 1000; i++ {
			if err := sb.Step(); err != nil {
				return "", err
			}
		}
		return "done", nil
	}
	restricted := NewFunc(RestrictedMode, Budgets{Steps: 100, WallTime: time.Minute})
	restricted.RegisterFunc("hog", hog)
	h, _ := restricted.Submit(context.Background(), Task{Executable: "hog"})
	res := waitRes(t, h)
	if res.ExitCode == 0 || !strings.Contains(res.Stderr, "step budget") {
		t.Errorf("restricted hog: %+v", res)
	}

	trusted := NewFunc(TrustedMode, Budgets{Steps: 100})
	trusted.RegisterFunc("hog", hog)
	h, _ = trusted.Submit(context.Background(), Task{Executable: "hog"})
	res = waitRes(t, h)
	if res.ExitCode != 0 || res.Stdout != "done" {
		t.Errorf("trusted hog: %+v", res)
	}
}

func TestSandboxAllocBudget(t *testing.T) {
	fn := NewFunc(RestrictedMode, Budgets{AllocBytes: 1024, WallTime: time.Minute})
	fn.RegisterFunc("eater", func(ctx context.Context, sb *Sandbox, args []string, stdin string) (string, error) {
		for i := 0; i < 10; i++ {
			if err := sb.Alloc(256); err != nil {
				return "", err
			}
		}
		return "ok", nil
	})
	h, _ := fn.Submit(context.Background(), Task{Executable: "eater"})
	res := waitRes(t, h)
	if res.ExitCode == 0 || !strings.Contains(res.Stderr, "memory budget") {
		t.Errorf("res = %+v", res)
	}
}

func TestSandboxWallTime(t *testing.T) {
	fn := NewFunc(RestrictedMode, Budgets{Steps: 1 << 40, AllocBytes: 1 << 40, WallTime: 50 * time.Millisecond})
	fn.RegisterFunc("sleeper", func(ctx context.Context, sb *Sandbox, args []string, stdin string) (string, error) {
		select {
		case <-ctx.Done():
			return "", ctx.Err()
		case <-time.After(10 * time.Second):
			return "overslept", nil
		}
	})
	h, _ := fn.Submit(context.Background(), Task{Executable: "sleeper"})
	start := time.Now()
	res := waitRes(t, h)
	if res.ExitCode == 0 {
		t.Errorf("wall-time hog succeeded: %+v", res)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("wall-time budget not enforced promptly")
	}
}

func TestSandboxPanicIsolation(t *testing.T) {
	fn := NewFunc(RestrictedMode, Budgets{})
	fn.RegisterFunc("bomb", func(ctx context.Context, sb *Sandbox, args []string, stdin string) (string, error) {
		panic("boom")
	})
	h, _ := fn.Submit(context.Background(), Task{Executable: "bomb"})
	res := waitRes(t, h)
	if res.ExitCode == 0 || !strings.Contains(res.Stderr, "panicked") {
		t.Errorf("res = %+v", res)
	}
	// The backend survives and runs the next job.
	fn.RegisterFunc("ok", func(ctx context.Context, sb *Sandbox, args []string, stdin string) (string, error) {
		return "fine", nil
	})
	h, _ = fn.Submit(context.Background(), Task{Executable: "ok"})
	if res := waitRes(t, h); res.Stdout != "fine" {
		t.Errorf("post-panic job: %+v", res)
	}
}

func TestSandboxPrintf(t *testing.T) {
	fn := NewFunc(TrustedMode, Budgets{})
	fn.RegisterFunc("writer", func(ctx context.Context, sb *Sandbox, args []string, stdin string) (string, error) {
		sb.Printf("line %d\n", 1)
		return "tail", nil
	})
	h, _ := fn.Submit(context.Background(), Task{Executable: "writer"})
	res := waitRes(t, h)
	if res.Stdout != "line 1\ntail" {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestSandboxCheckpoint(t *testing.T) {
	fn := NewFunc(TrustedMode, Budgets{})
	fn.RegisterFunc("stepper", func(ctx context.Context, sb *Sandbox, args []string, stdin string) (string, error) {
		start := 0
		if r := sb.Restored(); r != "" {
			fmt.Sscanf(r, "step=%d", &start)
		}
		for i := start; i < 5; i++ {
			sb.Checkpoint(fmt.Sprintf("step=%d", i+1))
		}
		return fmt.Sprintf("resumed-at=%d", start), nil
	})
	var ckpts []string
	h, err := fn.Submit(context.Background(), Task{
		Executable:   "stepper",
		OnCheckpoint: func(d string) { ckpts = append(ckpts, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	res := waitRes(t, h)
	if res.Stdout != "resumed-at=0" {
		t.Errorf("fresh run stdout = %q", res.Stdout)
	}
	if len(ckpts) != 5 || ckpts[4] != "step=5" {
		t.Errorf("checkpoints = %v", ckpts)
	}
	// A resumed run starts from the supplied checkpoint.
	h, err = fn.Submit(context.Background(), Task{Executable: "stepper", Checkpoint: "step=3"})
	if err != nil {
		t.Fatal(err)
	}
	if res := waitRes(t, h); res.Stdout != "resumed-at=3" {
		t.Errorf("resumed run stdout = %q", res.Stdout)
	}
	// Checkpoint without a sink is a no-op.
	h, _ = fn.Submit(context.Background(), Task{Executable: "stepper"})
	waitRes(t, h)
}

func TestForkSuspendResume(t *testing.T) {
	f := &Fork{}
	// The job sleeps briefly then writes; while SIGSTOPped it must not
	// make progress.
	h, err := f.Submit(context.Background(), Task{
		Executable: "/bin/sh",
		Args:       []string{"-c", "sleep 0.2; echo finished"},
	})
	if err != nil {
		t.Fatal(err)
	}
	sus, ok := h.(Suspender)
	if !ok {
		t.Fatal("fork handle does not implement Suspender")
	}
	time.Sleep(30 * time.Millisecond) // let the process start
	if err := sus.Suspend(); err != nil {
		t.Fatalf("Suspend: %v", err)
	}
	// Well past the job's natural runtime: still not finished.
	waitCtx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	if _, err := h.Wait(waitCtx); err == nil {
		cancel()
		t.Fatal("suspended job finished")
	}
	cancel()
	if err := sus.Resume(); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	res := waitRes(t, h)
	if res.ExitCode != 0 || strings.TrimSpace(res.Stdout) != "finished" {
		t.Errorf("res = %+v", res)
	}
	// Signalling a finished process errors cleanly.
	if err := sus.Suspend(); err == nil {
		t.Error("Suspend after exit succeeded")
	}
}

func TestForkCheckpointEnv(t *testing.T) {
	f := &Fork{}
	h, err := f.Submit(context.Background(), Task{
		Executable: "/bin/sh",
		Args:       []string{"-c", `echo "ckpt:$INFOGRAM_CHECKPOINT"`},
		Checkpoint: "pos=42",
	})
	if err != nil {
		t.Fatal(err)
	}
	res := waitRes(t, h)
	if strings.TrimSpace(res.Stdout) != "ckpt:pos=42" {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestModeStrings(t *testing.T) {
	if TrustedMode.String() != "trusted" || RestrictedMode.String() != "restricted" {
		t.Error("mode strings wrong")
	}
}

// fastExec is an inner backend for queue tests: tasks complete after a
// short, configurable busy period.
func fastExec(d time.Duration) *Func {
	fn := NewFunc(TrustedMode, Budgets{})
	fn.RegisterFunc("task", func(ctx context.Context, sb *Sandbox, args []string, stdin string) (string, error) {
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return "", ctx.Err()
		}
		return strings.Join(args, " "), nil
	})
	return fn
}

func TestQueueFIFOOrder(t *testing.T) {
	exec := fastExec(20 * time.Millisecond)
	q := NewQueue(QueueConfig{Name: "pbs", Slots: 1, Policy: FIFO{}, Executor: exec})
	defer q.Close()

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	for _, name := range []string{"a", "b", "c", "d"} {
		h, err := q.Submit(context.Background(), Task{Executable: "task", Args: []string{name}})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := h.Wait(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, res.Stdout)
			mu.Unlock()
		}()
		time.Sleep(5 * time.Millisecond) // establish arrival order
	}
	wg.Wait()
	if strings.Join(order, "") != "abcd" {
		t.Errorf("FIFO order = %v", order)
	}
}

func TestQueuePriorityOrder(t *testing.T) {
	exec := fastExec(30 * time.Millisecond)
	q := NewQueue(QueueConfig{Name: "lsf", Slots: 1, Policy: PriorityPolicy{}, Executor: exec})
	defer q.Close()

	// Occupy the single slot, then enqueue mixed priorities.
	h0, err := q.Submit(context.Background(), Task{Executable: "task", Args: []string{"first"}})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	var handles []Handle
	names := []string{"low", "high", "mid"}
	prios := []int{1, 10, 5}
	for i := range names {
		h, err := q.Submit(context.Background(), Task{Executable: "task", Args: []string{names[i]}, Priority: prios[i]})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := h0.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Collect completion order by waiting on all and comparing start
	// times.
	type done struct {
		name  string
		start time.Time
	}
	var ds []done
	for i, h := range handles {
		res, err := h.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		ds = append(ds, done{names[i], res.StartedAt})
	}
	byName := map[string]time.Time{}
	for _, d := range ds {
		byName[d.name] = d.start
	}
	if !byName["high"].Before(byName["mid"]) || !byName["mid"].Before(byName["low"]) {
		t.Errorf("priority order wrong: high=%v mid=%v low=%v",
			byName["high"], byName["mid"], byName["low"])
	}
}

func TestQueueSlotsBoundConcurrency(t *testing.T) {
	var running, peak int
	var mu sync.Mutex
	fn := NewFunc(TrustedMode, Budgets{})
	fn.RegisterFunc("task", func(ctx context.Context, sb *Sandbox, args []string, stdin string) (string, error) {
		mu.Lock()
		running++
		if running > peak {
			peak = running
		}
		mu.Unlock()
		time.Sleep(20 * time.Millisecond)
		mu.Lock()
		running--
		mu.Unlock()
		return "", nil
	})
	q := NewQueue(QueueConfig{Slots: 2, Executor: fn})
	defer q.Close()

	var handles []Handle
	for i := 0; i < 8; i++ {
		h, err := q.Submit(context.Background(), Task{Executable: "task"})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		waitRes(t, h)
	}
	if peak > 2 {
		t.Errorf("peak concurrency = %d, want <= 2", peak)
	}
	if st := q.WaitStats(); st.Count != 8 {
		t.Errorf("wait samples = %d", st.Count)
	}
}

func TestQueueWalltimeLimits(t *testing.T) {
	q := NewPBS(1, map[string]QueueLimits{
		"short": {MaxWallTime: time.Minute},
		"long":  {MaxWallTime: time.Hour},
	}, fastExec(time.Millisecond))
	defer q.Close()

	if _, err := q.Submit(context.Background(), Task{
		Executable: "task", Queue: "short", EstRuntime: 2 * time.Minute,
	}); err == nil {
		t.Error("over-limit task accepted")
	}
	h, err := q.Submit(context.Background(), Task{
		Executable: "task", Queue: "long", EstRuntime: 30 * time.Minute,
	})
	if err != nil {
		t.Fatalf("long queue: %v", err)
	}
	waitRes(t, h)
	if _, err := q.Submit(context.Background(), Task{Executable: "task", Queue: "ghost"}); err == nil {
		t.Error("unknown queue accepted")
	}
}

func TestQueueCancelWhileQueued(t *testing.T) {
	exec := fastExec(200 * time.Millisecond)
	q := NewQueue(QueueConfig{Slots: 1, Executor: exec})
	defer q.Close()
	h1, err := q.Submit(context.Background(), Task{Executable: "task"})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := q.Submit(context.Background(), Task{Executable: "task"})
	if err != nil {
		t.Fatal(err)
	}
	h2.Cancel()
	if _, err := h2.Wait(context.Background()); err == nil {
		t.Error("cancelled queued task reported success")
	}
	waitRes(t, h1)
}

func TestQueueClose(t *testing.T) {
	q := NewQueue(QueueConfig{Slots: 1, Executor: fastExec(100 * time.Millisecond)})
	h1, _ := q.Submit(context.Background(), Task{Executable: "task"})
	h2, _ := q.Submit(context.Background(), Task{Executable: "task"})
	time.Sleep(10 * time.Millisecond)
	q.Close()
	// Queued task fails; running one may complete.
	if _, err := h2.Wait(context.Background()); err == nil {
		t.Error("queued task survived Close")
	}
	_, _ = h1.Wait(context.Background())
	if _, err := q.Submit(context.Background(), Task{Executable: "task"}); err == nil {
		t.Error("Submit after Close succeeded")
	}
}

func TestFairshare(t *testing.T) {
	fs := &Fairshare{Decay: 1}
	// alice has consumed time; bob has not: bob's task runs first.
	fs.Finished(&QueuedTask{Task: Task{Owner: "alice"}}, 10*time.Second)
	pending := []*QueuedTask{
		{Task: Task{Owner: "alice", Priority: 100}},
		{Task: Task{Owner: "bob"}},
	}
	if idx := fs.Next(pending); idx != 1 {
		t.Errorf("Next = %d, want bob (1)", idx)
	}
	// Equal usage: priority breaks the tie.
	pending2 := []*QueuedTask{
		{Task: Task{Owner: "carol", Priority: 1}},
		{Task: Task{Owner: "dave", Priority: 9}},
	}
	if idx := fs.Next(pending2); idx != 1 {
		t.Errorf("tie-break Next = %d, want 1", idx)
	}
	if fs.Usage("alice") == 0 {
		t.Error("alice's usage not recorded")
	}
}

func TestLSFFairshareIntegration(t *testing.T) {
	exec := fastExec(30 * time.Millisecond)
	q := NewLSF(1, exec)
	defer q.Close()
	ctx := context.Background()

	// alice floods the queue; bob submits one task later. Bob's task must
	// not wait behind all of alice's.
	var aliceHandles []Handle
	for i := 0; i < 4; i++ {
		h, err := q.Submit(ctx, Task{Executable: "task", Owner: "alice"})
		if err != nil {
			t.Fatal(err)
		}
		aliceHandles = append(aliceHandles, h)
	}
	time.Sleep(40 * time.Millisecond) // let alice's first task run
	hBob, err := q.Submit(ctx, Task{Executable: "task", Owner: "bob"})
	if err != nil {
		t.Fatal(err)
	}
	resBob, err := hBob.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var lastAlice time.Time
	for _, h := range aliceHandles {
		res, err := h.Wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if res.FinishedAt.After(lastAlice) {
			lastAlice = res.FinishedAt
		}
	}
	if !resBob.FinishedAt.Before(lastAlice) {
		t.Error("fairshare did not advance bob ahead of alice's backlog")
	}
}

func TestCondorMatchmaking(t *testing.T) {
	exec := fastExec(10 * time.Millisecond)
	c := NewCondor([]Machine{
		{Name: "linuxbox", Attrs: map[string]string{"os": "linux", "arch": "x86"}, Slots: 1},
		{Name: "sunbox", Attrs: map[string]string{"os": "solaris", "arch": "sparc"}, Slots: 1},
	}, exec)
	defer c.Close()
	ctx := context.Background()

	h, err := c.Submit(ctx, Task{Executable: "task", Requirements: map[string]string{"os": "solaris"}})
	if err != nil {
		t.Fatal(err)
	}
	res := waitRes(t, h)
	if res.Machine != "sunbox" {
		t.Errorf("Machine = %q", res.Machine)
	}
	// Unsatisfiable requirements are rejected at submit.
	if _, err := c.Submit(ctx, Task{Executable: "task", Requirements: map[string]string{"os": "plan9"}}); err == nil {
		t.Error("unsatisfiable requirements accepted")
	}
	// No requirements: matches any machine.
	h, err = c.Submit(ctx, Task{Executable: "task"})
	if err != nil {
		t.Fatal(err)
	}
	if res := waitRes(t, h); res.Machine == "" {
		t.Error("no machine recorded")
	}
}

func TestCondorSlotContention(t *testing.T) {
	exec := fastExec(30 * time.Millisecond)
	c := NewCondor([]Machine{
		{Name: "m1", Attrs: map[string]string{"os": "linux"}, Slots: 1},
	}, exec)
	defer c.Close()
	ctx := context.Background()

	var handles []Handle
	for i := 0; i < 3; i++ {
		h, err := c.Submit(ctx, Task{Executable: "task", Requirements: map[string]string{"os": "linux"}})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		res := waitRes(t, h)
		if res.Machine != "m1" {
			t.Errorf("Machine = %q", res.Machine)
		}
	}
	if st := c.WaitStats(); st.Count != 3 {
		t.Errorf("wait samples = %d", st.Count)
	}
}

func TestCondorSkipsBlockedJobForLaterMatch(t *testing.T) {
	exec := fastExec(80 * time.Millisecond)
	c := NewCondor([]Machine{
		{Name: "linux1", Attrs: map[string]string{"os": "linux"}, Slots: 1},
		{Name: "mac1", Attrs: map[string]string{"os": "mac"}, Slots: 1},
	}, exec)
	defer c.Close()
	ctx := context.Background()

	// Occupy linux1, then queue another linux job and a mac job: the mac
	// job must not wait behind the blocked linux job.
	h1, _ := c.Submit(ctx, Task{Executable: "task", Requirements: map[string]string{"os": "linux"}})
	time.Sleep(10 * time.Millisecond)
	h2, _ := c.Submit(ctx, Task{Executable: "task", Requirements: map[string]string{"os": "linux"}})
	h3, _ := c.Submit(ctx, Task{Executable: "task", Requirements: map[string]string{"os": "mac"}})

	res3 := waitRes(t, h3)
	res2 := waitRes(t, h2)
	waitRes(t, h1)
	if !res3.StartedAt.Before(res2.StartedAt) {
		t.Error("mac job waited behind blocked linux job")
	}
}
