// Package scheduler implements the backend tier of Figure 1/3: the local
// job execution systems a job manager hands work to. The paper requires
// the backend to be "easily portable to various scheduling systems" with
// interfaces for PBS, LSF, Condor, and Unix process fork (§2), plus the
// J-GRAM extension of executing code inside the service process itself —
// the jar-in-the-JVM model (§7) — with a trusted and a restricted
// (sandboxed) mode.
//
// Backends provided:
//
//   - Fork: real process execution via os/exec (the GRAM fork scheduler).
//   - Func: in-process execution of registered functions (the jar analog),
//     with TrustedMode/RestrictedMode sandboxing.
//   - Queue: a slot-limited batch queue with pluggable ordering policies
//     emulating PBS (FIFO), LSF (priority + fairshare), and a Condor-style
//     matchmaker over machine advertisements.
package scheduler

import (
	"context"
	"time"
)

// Task is one unit of work handed to a backend.
type Task struct {
	// Executable is the program path (Fork/Queue) or registered function
	// name (Func).
	Executable string
	Args       []string
	Dir        string
	Env        map[string]string
	Stdin      string
	// Owner is the local account the task runs as (from the gridmap).
	Owner string
	// Priority orders tasks in priority-based queues; higher runs first.
	Priority int
	// Queue names the target batch queue, where applicable.
	Queue string
	// Requirements are matchmaking constraints for Condor-style backends:
	// every key must match the machine advertisement exactly.
	Requirements map[string]string
	// EstRuntime is the declared runtime hint used by queue policies that
	// enforce per-queue walltime limits.
	EstRuntime time.Duration
	// Checkpoint is the most recent checkpoint blob of a restarted job;
	// in-process jobs read it through Sandbox.Restored, forked processes
	// through the INFOGRAM_CHECKPOINT environment variable.
	Checkpoint string
	// OnCheckpoint, when set, receives checkpoint blobs the task emits
	// during execution (Sandbox.Checkpoint); the job manager persists
	// them to the log for restart recovery (paper §10).
	OnCheckpoint func(data string)
}

// Result is the outcome of a completed task.
type Result struct {
	ExitCode   int
	Stdout     string
	Stderr     string
	StartedAt  time.Time
	FinishedAt time.Time
	// QueueWait is the time between submission and execution start; queue
	// backends report their scheduling delay here.
	QueueWait time.Duration
	// Machine names the execution machine for matchmade backends.
	Machine string
}

// Handle tracks one submitted task.
type Handle interface {
	// Wait blocks until the task finishes or ctx is cancelled. A task
	// that ran and exited non-zero returns a Result with the exit code
	// and a nil error; err is reserved for failures to execute at all or
	// cancellation.
	Wait(ctx context.Context) (Result, error)
	// Cancel stops the task if it is queued or running. Safe to call
	// multiple times and after completion.
	Cancel()
}

// Suspender is optionally implemented by handles whose tasks can be
// paused and resumed (the fork backend uses SIGSTOP/SIGCONT); it backs the
// GRAM SUSPENDED job state.
type Suspender interface {
	Suspend() error
	Resume() error
}

// Backend is a local scheduling system.
type Backend interface {
	// Name identifies the backend ("fork", "func", "pbs", "lsf",
	// "condor").
	Name() string
	// Submit hands a task to the backend. Submission is asynchronous:
	// errors occurring during execution surface from Handle.Wait.
	Submit(ctx context.Context, t Task) (Handle, error)
}

// resultHandle is a Handle over a completion channel, shared by the
// backend implementations.
type resultHandle struct {
	done   chan struct{} // closed when result/err are set
	cancel context.CancelFunc
	res    Result
	err    error
}

func newResultHandle(cancel context.CancelFunc) *resultHandle {
	if cancel == nil {
		cancel = func() {}
	}
	return &resultHandle{done: make(chan struct{}), cancel: cancel}
}

// finish records the outcome exactly once.
func (h *resultHandle) finish(res Result, err error) {
	h.res, h.err = res, err
	close(h.done)
}

// Wait implements Handle.
func (h *resultHandle) Wait(ctx context.Context) (Result, error) {
	select {
	case <-h.done:
		return h.res, h.err
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// Cancel implements Handle.
func (h *resultHandle) Cancel() { h.cancel() }
