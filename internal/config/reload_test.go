package config

import (
	"sort"
	"testing"
	"time"

	"infogram/internal/provider"
)

func TestHotReload(t *testing.T) {
	reg := provider.NewRegistry(nil)
	// A provider outside configuration control.
	reg.Register(provider.RuntimeProvider{}, provider.RegisterOptions{TTL: time.Second})

	m := NewManager(reg)
	cfg1, err := ParseString("60 Date date -u\n100 CPU cat /proc/cpuinfo\n")
	if err != nil {
		t.Fatal(err)
	}
	updated, removed, err := m.Load(cfg1)
	if err != nil || updated != 2 || removed != 0 {
		t.Fatalf("first load: %d/%d %v", updated, removed, err)
	}
	if reg.Len() != 3 {
		t.Fatalf("registry len = %d", reg.Len())
	}
	g, _ := reg.Lookup("Date")
	if g.TTL() != 60*time.Millisecond {
		t.Errorf("Date TTL = %v", g.TTL())
	}

	// Reload: Date's TTL changes, CPU disappears, Uptime appears.
	cfg2, err := ParseString("500 Date date -u\n0 Uptime cat /proc/uptime\n")
	if err != nil {
		t.Fatal(err)
	}
	updated, removed, err = m.Load(cfg2)
	if err != nil || updated != 2 || removed != 1 {
		t.Fatalf("second load: %d/%d %v", updated, removed, err)
	}
	if _, ok := reg.Lookup("CPU"); ok {
		t.Error("removed keyword still registered")
	}
	if _, ok := reg.Lookup("Uptime"); !ok {
		t.Error("new keyword missing")
	}
	g, _ = reg.Lookup("Date")
	if g.TTL() != 500*time.Millisecond {
		t.Errorf("Date TTL after reload = %v", g.TTL())
	}
	// The unmanaged Runtime provider survives reloads.
	if _, ok := reg.Lookup("Runtime"); !ok {
		t.Error("unmanaged provider removed by reload")
	}
	kws := m.Keywords()
	sort.Strings(kws)
	if len(kws) != 2 || kws[0] != "date" || kws[1] != "uptime" {
		t.Errorf("managed keywords = %v", kws)
	}
}

func TestHotReloadEmptyConfig(t *testing.T) {
	reg := provider.NewRegistry(nil)
	m := NewManager(reg)
	cfg, _ := ParseString("60 Date date -u\n")
	if _, _, err := m.Load(cfg); err != nil {
		t.Fatal(err)
	}
	updated, removed, err := m.Load(&Config{})
	if err != nil || updated != 0 || removed != 1 {
		t.Fatalf("empty reload: %d/%d %v", updated, removed, err)
	}
	if reg.Len() != 0 {
		t.Errorf("registry len = %d", reg.Len())
	}
}

func TestHotReloadBadEntry(t *testing.T) {
	reg := provider.NewRegistry(nil)
	m := NewManager(reg)
	bad := &Config{Entries: []Entry{{Keyword: "X", Command: " "}}}
	if _, _, err := m.Load(bad); err == nil {
		t.Error("bad entry loaded")
	}
}
