package config

import (
	"fmt"
	"sync"

	"infogram/internal/provider"
)

// Manager applies configurations to a provider registry and supports hot
// reload: re-loading a changed configuration updates existing keywords,
// adds new ones, and unregisters keywords that disappeared — without
// touching providers registered outside the configuration (such as the
// built-in Runtime provider). This realizes the "configure the system
// monitor service with customized information providers" component of
// Figure 3 as a live operation.
type Manager struct {
	reg *provider.Registry

	mu      sync.Mutex
	applied map[string]bool // lower-cased keywords this manager registered
}

// NewManager manages configuration-driven providers inside reg.
func NewManager(reg *provider.Registry) *Manager {
	return &Manager{reg: reg, applied: make(map[string]bool)}
}

// Load applies cfg: every entry is (re)registered; previously applied
// keywords absent from cfg are unregistered. It returns the number of
// added/updated and removed keywords.
func (m *Manager) Load(cfg *Config) (updated, removed int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()

	next := make(map[string]bool, len(cfg.Entries))
	for _, e := range cfg.Entries {
		p, perr := provider.NewExecProvider(e.Keyword, e.Command)
		if perr != nil {
			return updated, removed, fmt.Errorf("config: reload %q: %w", e.Keyword, perr)
		}
		m.reg.Register(p, provider.RegisterOptions{
			TTL:     e.TTL,
			Delay:   e.Delay,
			Degrade: e.Degrade,
			Format:  e.Format,
		})
		next[lowerKeyword(e.Keyword)] = true
		updated++
	}
	for kw := range m.applied {
		if !next[kw] {
			if m.reg.Unregister(kw) {
				removed++
			}
		}
	}
	m.applied = next
	return updated, removed, nil
}

// LoadFile reads and applies a configuration file.
func (m *Manager) LoadFile(path string) (updated, removed int, err error) {
	cfg, err := Load(path)
	if err != nil {
		return 0, 0, err
	}
	return m.Load(cfg)
}

// Keywords returns the lower-cased keywords currently managed.
func (m *Manager) Keywords() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.applied))
	for kw := range m.applied {
		out = append(out, kw)
	}
	return out
}

func lowerKeyword(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + ('a' - 'A')
		}
	}
	return string(b)
}
