package config

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"infogram/internal/cache"
	"infogram/internal/provider"
	"infogram/internal/quality"
)

func TestTable1Reproduction(t *testing.T) {
	// E1: the verbatim configuration of the paper's Table 1 parses into
	// exactly the mappings the table shows.
	cfg, err := ParseString(Table1)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		ttl     time.Duration
		keyword string
		command string
	}{
		{60 * time.Millisecond, "Date", "date -u"},
		{80 * time.Millisecond, "Memory", "/sbin/sysinfo.exe -mem"},
		{100 * time.Millisecond, "CPU", "/sbin/sysinfo.exe -cpu"},
		{0, "CPULoad", "/usr/local/bin/cpuload.exe"},
		{1000 * time.Millisecond, "list", "/bin/ls /home/gregor"},
	}
	if len(cfg.Entries) != len(want) {
		t.Fatalf("got %d entries, want %d", len(cfg.Entries), len(want))
	}
	for i, w := range want {
		e := cfg.Entries[i]
		if e.TTL != w.ttl || e.Keyword != w.keyword || e.Command != w.command {
			t.Errorf("row %d = {%v %q %q}, want {%v %q %q}",
				i, e.TTL, e.Keyword, e.Command, w.ttl, w.keyword, w.command)
		}
	}
}

func TestTable1RoundTrip(t *testing.T) {
	cfg, err := ParseString(Table1)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := cfg.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != Table1 {
		t.Errorf("Render does not reproduce Table 1:\n%q\nwant\n%q", sb.String(), Table1)
	}
}

func TestDirectives(t *testing.T) {
	src := `60 Date date -u
0 CPULoad /usr/local/bin/cpuload.exe
@degrade CPULoad linear(2s)
@delay CPULoad 100
@format Date xml
`
	cfg, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	load, ok := cfg.Lookup("cpuload")
	if !ok {
		t.Fatal("CPULoad not found (case-insensitive lookup)")
	}
	if load.Degrade == nil || load.Degrade.Name() != "linear(2s)" {
		t.Errorf("Degrade = %v", load.Degrade)
	}
	if load.Delay != 100*time.Millisecond {
		t.Errorf("Delay = %v", load.Delay)
	}
	date, _ := cfg.Lookup("Date")
	if date.Format != "xml" {
		t.Errorf("Format = %q", date.Format)
	}
	// Degradation behaves.
	if q := load.Degrade.Quality(time.Second); q != 50 {
		t.Errorf("Quality(1s) = %v", q)
	}
}

func TestDirectiveRoundTrip(t *testing.T) {
	src := `60 Date date -u
@degrade Date exponential(5s)
@delay Date 250ms
@format Date xml
`
	cfg, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := cfg.Render(&sb); err != nil {
		t.Fatal(err)
	}
	cfg2, err := ParseString(sb.String())
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, sb.String())
	}
	e, _ := cfg2.Lookup("Date")
	if e.Degrade == nil || e.Delay != 250*time.Millisecond || e.Format != "xml" {
		t.Errorf("round-tripped entry = %+v", e)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"60 Date",                    // missing command
		"abc Date date",              // bad TTL
		"-5 Date date",               // negative TTL
		"60 Date date\n60 Date date", // duplicate keyword
		"@degrade Ghost linear(1s)",  // directive for unknown keyword
		"60 D d\n@degrade D nope(1)", // bad degradation spec
		"60 D d\n@delay D xyz",       // bad delay
		"60 D d\n@format D yaml",     // bad format
		"60 D d\n@mystery D arg",     // unknown directive
		"60 D d\n@degrade D",         // directive missing argument
	}
	for _, src := range bad {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q): expected error", src)
		}
	}
}

func TestCommentsAndBlanks(t *testing.T) {
	src := "# heading\n\n  \n60 Date date -u\n# trailing\n"
	cfg, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Entries) != 1 {
		t.Errorf("entries = %d", len(cfg.Entries))
	}
}

func TestDurationSyntaxInTTL(t *testing.T) {
	cfg, err := ParseString("1m30s Slow /bin/true\n")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Entries[0].TTL != 90*time.Second {
		t.Errorf("TTL = %v", cfg.Entries[0].TTL)
	}
}

func TestLoadFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "infogram.conf")
	if err := os.WriteFile(path, []byte(Table1), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Entries) != 5 {
		t.Errorf("entries = %d", len(cfg.Entries))
	}
	if _, err := Load(filepath.Join(dir, "missing.conf")); err == nil {
		t.Error("missing file load succeeded")
	}
}

func TestApply(t *testing.T) {
	// A runnable variant of Table 1 using real binaries.
	src := `60 Date date -u
1000 list /bin/ls /
@degrade Date linear(10s)
@delay list 50
`
	cfg, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	reg := provider.NewRegistry(nil)
	regs, err := cfg.Apply(reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 || reg.Len() != 2 {
		t.Fatalf("registrations = %d", len(regs))
	}
	g, ok := reg.Lookup("Date")
	if !ok {
		t.Fatal("Date not registered")
	}
	if g.TTL() != 60*time.Millisecond {
		t.Errorf("TTL = %v", g.TTL())
	}
	if g.Degradation() == nil {
		t.Error("degradation not applied")
	}
	// The provider actually executes.
	rep, err := g.Get(context.Background(), cache.Cached, 0)
	if err != nil {
		t.Skipf("date not available: %v", err)
	}
	if len(rep.Attrs) == 0 {
		t.Error("Date produced no attributes")
	}
	_ = quality.Score(0) // anchor the import
}

func TestApplyBadCommand(t *testing.T) {
	cfg := &Config{Entries: []Entry{{Keyword: "X", Command: ""}}}
	if _, err := cfg.Apply(provider.NewRegistry(nil)); err == nil {
		t.Error("empty command applied")
	}
}
