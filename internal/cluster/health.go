package cluster

import (
	"sync"
	"time"

	"infogram/internal/telemetry"
)

// Health defaults. Three consecutive failures trips ejection — one lost
// TCP segment or a single slow request shouldn't reshuffle the ring —
// and an ejected member is probed every ProbeInterval until a probe
// succeeds, at which point it is readmitted and its keys return.
const (
	DefaultFailThreshold = 3
	DefaultProbeInterval = 2 * time.Second
)

// memberHealth is the per-member failure state.
type memberHealth struct {
	consecutive int  // consecutive failures since the last success
	ejected     bool // past threshold; excluded from routing
}

// health tracks per-member consecutive failures, ejects members past
// the threshold, and readmits them when a probe succeeds. Probing runs
// on a background loop started by start(); the probe itself is supplied
// by the router (a pool ping), keeping this type free of network code.
type health struct {
	mu        sync.Mutex
	members   map[string]*memberHealth
	threshold int

	probe    func(member string) error
	interval time.Duration

	stop chan struct{}
	done chan struct{}

	// nil-safe telemetry, bound by setTelemetry.
	ejections   *telemetry.Counter
	readmits    *telemetry.Counter
	ejectedGage *telemetry.Gauge
}

// setTelemetry binds the tracker's counters to a registry.
func (h *health) setTelemetry(reg *telemetry.Registry) {
	if h == nil || reg == nil {
		return
	}
	h.ejections = reg.Counter("cluster_member_ejections_total",
		"cluster members ejected from routing after consecutive failures")
	h.readmits = reg.Counter("cluster_member_readmissions_total",
		"ejected cluster members readmitted after a successful probe or call")
	h.ejectedGage = reg.Gauge("cluster_members_ejected",
		"cluster members currently ejected from routing")
}

func newHealth(members []string, threshold int, interval time.Duration, probe func(string) error) *health {
	if threshold <= 0 {
		threshold = DefaultFailThreshold
	}
	if interval <= 0 {
		interval = DefaultProbeInterval
	}
	h := &health{
		members:   make(map[string]*memberHealth, len(members)),
		threshold: threshold,
		probe:     probe,
		interval:  interval,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	for _, m := range members {
		h.members[m] = &memberHealth{}
	}
	return h
}

// start launches the probe loop. Only ejected members are probed, so
// the loop is free while the cluster is healthy.
func (h *health) start() {
	go func() {
		defer close(h.done)
		t := time.NewTicker(h.interval)
		defer t.Stop()
		for {
			select {
			case <-h.stop:
				return
			case <-t.C:
				h.probeEjected()
			}
		}
	}()
}

func (h *health) close() {
	close(h.stop)
	<-h.done
}

// fail records a failed call against member; crossing the threshold
// ejects it.
func (h *health) fail(member string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	mh := h.members[member]
	if mh == nil {
		return
	}
	mh.consecutive++
	if !mh.ejected && mh.consecutive >= h.threshold {
		mh.ejected = true
		h.ejections.Inc()
		h.ejectedGage.Add(1)
	}
}

// ok records a successful call; a success through the normal path also
// readmits (the member evidently works again even if no probe ran yet).
func (h *health) ok(member string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	mh := h.members[member]
	if mh == nil {
		return
	}
	mh.consecutive = 0
	if mh.ejected {
		mh.ejected = false
		h.readmits.Inc()
		h.ejectedGage.Add(-1)
	}
}

// ejected returns the current reject set, or nil when everyone is
// healthy (the common case — lets the ring skip its exclusion path).
func (h *health) ejected() map[string]bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out map[string]bool
	for m, mh := range h.members {
		if mh.ejected {
			if out == nil {
				out = make(map[string]bool, 2)
			}
			out[m] = true
		}
	}
	return out
}

// probeEjected pings every ejected member once; a successful probe
// readmits via ok().
func (h *health) probeEjected() {
	if h.probe == nil {
		return
	}
	h.mu.Lock()
	var targets []string
	for m, mh := range h.members {
		if mh.ejected {
			targets = append(targets, m)
		}
	}
	h.mu.Unlock()
	for _, m := range targets {
		if err := h.probe(m); err == nil {
			h.ok(m)
		}
	}
}
