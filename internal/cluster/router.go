package cluster

import (
	"context"
	"fmt"
	"net/url"
	"time"

	"infogram/internal/core"
	"infogram/internal/gram"
	"infogram/internal/gsi"
	"infogram/internal/telemetry"
	"infogram/internal/wire"
	"infogram/internal/xrsl"
)

// ErrNoMembers reports that routing was attempted with every member
// ejected (or an empty member list).
var ErrNoMembers = fmt.Errorf("cluster: no healthy members")

// RouterConfig configures a Router.
type RouterConfig struct {
	// Members are the backend infogram-server addresses (host:port).
	Members []string
	// Vnodes is the virtual-node count per member; <=0 selects
	// DefaultVnodes.
	Vnodes int
	// Cred and Trust authenticate the router to every backend.
	Cred  *gsi.Credential
	Trust *gsi.TrustStore
	// Pool configures the per-member connection pool (and through
	// Pool.Client, timeouts/retry/telemetry for each pooled client).
	Pool core.PoolOptions
	// FailThreshold is the consecutive-failure count that ejects a member
	// from routing; <=0 selects DefaultFailThreshold.
	FailThreshold int
	// ProbeInterval is how often ejected members are pinged for
	// readmission; <=0 selects DefaultProbeInterval.
	ProbeInterval time.Duration
	// Telemetry optionally receives the cluster routing counters.
	Telemetry *telemetry.Registry
}

// Router maps requests onto N backends through the consistent-hash ring
// and fronts one core.Pool per member. Failures observed through the
// router feed per-member health: a member past the consecutive-failure
// threshold is ejected (its keys fall to rendezvous-chosen survivors)
// and probed back in.
type Router struct {
	ring   *Ring
	pools  map[string]*core.Pool
	health *health

	forwards  *telemetry.Counter
	fallbacks *telemetry.Counter
}

// NewRouter builds a router over cfg.Members. Pools dial lazily; a
// router over unreachable members constructs fine and ejects them on
// first use.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Members) == 0 {
		return nil, ErrNoMembers
	}
	r := &Router{
		ring:  NewRing(cfg.Members, cfg.Vnodes),
		pools: make(map[string]*core.Pool, len(cfg.Members)),
	}
	for _, m := range cfg.Members {
		if _, dup := r.pools[m]; dup {
			return nil, fmt.Errorf("cluster: duplicate member %q", m)
		}
		r.pools[m] = core.NewPool(m, cfg.Cred, cfg.Trust, cfg.Pool)
	}
	r.health = newHealth(cfg.Members, cfg.FailThreshold, cfg.ProbeInterval, func(m string) error {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		return r.pools[m].Ping(ctx)
	})
	r.health.setTelemetry(cfg.Telemetry)
	if cfg.Telemetry != nil {
		r.forwards = cfg.Telemetry.Counter("cluster_router_forwards_total",
			"requests routed to a backend by the cluster router")
		r.fallbacks = cfg.Telemetry.Counter("cluster_router_fallbacks_total",
			"requests routed to a rendezvous fallback because the ring owner was ejected")
	}
	r.health.start()
	return r, nil
}

// Close stops health probing and closes every member pool.
func (r *Router) Close() error {
	r.health.close()
	for _, p := range r.pools {
		p.Close()
	}
	return nil
}

// Members returns the configured member addresses, sorted.
func (r *Router) Members() []string { return r.ring.Members() }

// Ejected returns the currently-ejected member set (nil when healthy).
func (r *Router) Ejected() map[string]bool { return r.health.ejected() }

// owner resolves key to a healthy member, falling back past ejections.
func (r *Router) owner(key string) (string, error) {
	rejected := r.health.ejected()
	m := r.ring.OwnerExcluding(key, rejected)
	if m == "" {
		return "", ErrNoMembers
	}
	if rejected != nil && m != r.ring.Owner(key) {
		r.fallbacks.Inc()
	}
	return m, nil
}

// observe feeds a call outcome into member health. Only transport-level
// failures count against a member: a REJECT or server ERROR is the
// member answering, not the member down — core.Pool already surfaces
// those as non-error frames or non-transient errors, so anything
// isTransient-shaped lands here as err != nil.
func (r *Router) observe(member string, err error) {
	if err != nil {
		r.health.fail(member)
	} else {
		r.health.ok(member)
	}
}

// RouteKey computes the routing key for a raw xRSL source: the first
// info keyword for a query (so a keyword's cache entries concentrate on
// its owner), the source text for a job (spreading submissions), and
// the source text as a last resort when the xRSL does not parse — the
// backend will produce the real parse error. Multi-requests route by
// their first part.
func RouteKey(src string) string {
	key, _ := classify(src)
	return key
}

// MemberForContact returns the member owning a job contact. Job
// contacts embed the gatekeeper that minted them (gram://host:port/...),
// so status/cancel/signal route straight to the owner without any table.
// Contacts naming a non-member (a promoted follower's old leader, a
// decommissioned node) route by ring over the whole contact string so
// they at least fail deterministically.
func (r *Router) MemberForContact(contact string) (string, error) {
	if u, err := url.Parse(contact); err == nil && u.Host != "" {
		if _, ok := r.pools[u.Host]; ok {
			return u.Host, nil
		}
	}
	return r.owner(contact)
}

// Forward routes one raw request frame by key and relays it to the
// owner, recording the outcome in member health.
func (r *Router) Forward(ctx context.Context, key string, req wire.Frame, idempotent bool) (wire.Frame, error) {
	m, err := r.owner(key)
	if err != nil {
		return wire.Frame{}, err
	}
	return r.forwardTo(ctx, m, req, idempotent)
}

// ForwardToContact routes a job-control frame (STATUS/CANCEL/SIGNAL) to
// the member named inside the contact.
func (r *Router) ForwardToContact(ctx context.Context, contact string, req wire.Frame, idempotent bool) (wire.Frame, error) {
	m, err := r.MemberForContact(contact)
	if err != nil {
		return wire.Frame{}, err
	}
	return r.forwardTo(ctx, m, req, idempotent)
}

func (r *Router) forwardTo(ctx context.Context, member string, req wire.Frame, idempotent bool) (wire.Frame, error) {
	r.forwards.Inc()
	resp, err := r.pools[member].Forward(ctx, req, idempotent)
	r.observe(member, err)
	return resp, err
}

// Query routes a typed information request by its first keyword.
func (r *Router) Query(ctx context.Context, req xrsl.InfoRequest) (core.InfoResult, error) {
	return r.QueryRaw(ctx, req.Encode())
}

// QueryRaw routes a raw info query by RouteKey.
func (r *Router) QueryRaw(ctx context.Context, src string) (core.InfoResult, error) {
	m, err := r.owner(RouteKey(src))
	if err != nil {
		return core.InfoResult{}, err
	}
	res, qerr := r.pools[m].QueryRaw(ctx, src)
	r.observe(m, qerr)
	return res, qerr
}

// Submit routes a job submission by its source hash; the returned
// contact embeds the owning member, so subsequent Status/Cancel calls
// route back to it.
func (r *Router) Submit(ctx context.Context, src string) (string, error) {
	m, err := r.owner(RouteKey(src))
	if err != nil {
		return "", err
	}
	contact, serr := r.pools[m].Submit(ctx, src)
	r.observe(m, serr)
	return contact, serr
}

// Status routes a status poll to the contact's owner.
func (r *Router) Status(ctx context.Context, contact string) (gram.StatusReply, error) {
	m, err := r.MemberForContact(contact)
	if err != nil {
		return gram.StatusReply{}, err
	}
	reply, serr := r.pools[m].Status(ctx, contact)
	r.observe(m, serr)
	return reply, serr
}

// Pool exposes the member's pool (nil for unknown members) so callers
// with out-of-band needs — the load generator's ring-aware mode, tests —
// reuse the router's connections.
func (r *Router) Pool(member string) *core.Pool { return r.pools[member] }
