// Package cluster composes the single-node ingredients built by earlier
// PRs — pooled mux clients, the WAL journal, the provider fan-out pool —
// into a multi-node InfoGram: consistent-hash routing of keywords and
// jobs across N gatekeepers, GIIS federation over many GRIS backends,
// and hot-standby gatekeepers that tail the leader's journal over the
// wire so a killed leader fails over without losing jobs.
package cluster

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultVnodes is the virtual-node count per member. 128 keeps the
// ring balanced within a few percent for small member counts while the
// sorted-point slice stays a handful of KiB.
const DefaultVnodes = 128

// point is one virtual node on the ring: a hash position owned by a
// member.
type point struct {
	hash   uint64
	member string
}

// Ring is a consistent-hash ring with virtual nodes. Each member is
// placed at Vnodes deterministic positions ("member#i" hashed with
// FNV-1a), so the same member set always produces the same placement
// regardless of join order, and adding or removing one member moves
// only ~1/N of the keyspace.
//
// Ring is safe for concurrent use; Owner is lock-cheap (RLock + binary
// search, no allocation).
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []point         // sorted by hash
	member map[string]bool // present members
}

// NewRing builds a ring over the given members. vnodes <= 0 selects
// DefaultVnodes.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{vnodes: vnodes, member: make(map[string]bool, len(members))}
	for _, m := range members {
		r.addLocked(m)
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// hash64 is FNV-1a over s finished with the splitmix64 avalanche. Plain
// FNV clusters badly on near-identical inputs ("m#1", "m#2", ...), which
// skews vnode placement; the finalizer restores full-width uniformity
// while keeping the hash dependency-free and allocation-free.
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

// addLocked places member's virtual nodes without re-sorting; callers
// sort afterwards.
func (r *Ring) addLocked(m string) {
	if r.member[m] {
		return
	}
	r.member[m] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", m, i)), member: m})
	}
}

// Add inserts a member (no-op if present). Only keys whose ring
// position falls in the new member's arcs move.
func (r *Ring) Add(m string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.member[m] {
		return
	}
	r.addLocked(m)
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a member (no-op if absent). Its arcs are absorbed by
// the clockwise successors; no other key moves.
func (r *Ring) Remove(m string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.member[m] {
		return
	}
	delete(r.member, m)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != m {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members returns the present member set, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.member))
	for m := range r.member {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.member)
}

// Owner maps key to the member owning the first virtual node at or
// clockwise after the key's hash. Empty string means the ring is empty.
func (r *Ring) Owner(key string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// OwnerExcluding maps key to an owner, skipping members in the reject
// set (ejected by health tracking). The ring walk degrades into
// rendezvous hashing over the surviving members: among non-rejected
// members, pick the one maximizing hash(key+"@"+member). Rendezvous
// (rather than continuing the ring walk) keeps the fallback assignment
// stable while the ejected set churns — a member flapping in and out of
// health moves only its own keys, never reshuffles the fallbacks of
// other ejected members' keys.
func (r *Ring) OwnerExcluding(key string, reject map[string]bool) string {
	if len(reject) == 0 {
		return r.Owner(key)
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return ""
	}
	// Fast path: the ring owner is healthy.
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	if !reject[r.points[i].member] {
		return r.points[i].member
	}
	// Rendezvous over the survivors.
	var best string
	var bestHash uint64
	for m := range r.member {
		if reject[m] {
			continue
		}
		if hw := hash64(key + "@" + m); best == "" || hw > bestHash || (hw == bestHash && m < best) {
			best, bestHash = m, hw
		}
	}
	return best // "" when every member is rejected
}
