package cluster

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("key%08d", i)
	}
	return out
}

// TestRingBalance: at 128 vnodes the per-member share of a large keyspace
// stays within ±15% of fair.
func TestRingBalance(t *testing.T) {
	members := []string{"node-a:7000", "node-b:7000", "node-c:7000", "node-d:7000"}
	r := NewRing(members, DefaultVnodes)
	const n = 100000
	counts := make(map[string]int, len(members))
	for _, k := range keys(n) {
		counts[r.Owner(k)]++
	}
	fair := float64(n) / float64(len(members))
	for _, m := range members {
		got := float64(counts[m])
		if got < fair*0.85 || got > fair*1.15 {
			t.Errorf("member %s owns %.0f keys, outside ±15%% of fair share %.0f", m, got, fair)
		}
	}
}

// TestRingDeterministicPlacement: the same member set produces the same
// placement regardless of construction order.
func TestRingDeterministicPlacement(t *testing.T) {
	a := NewRing([]string{"x:1", "y:1", "z:1"}, 64)
	b := NewRing([]string{"z:1", "x:1", "y:1"}, 64)
	for _, k := range keys(1000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("placement differs for %q: %q vs %q", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingMinimalMovementOnJoin: adding one member to an N-member ring
// moves roughly 1/(N+1) of the keys — and never a key between two
// surviving members.
func TestRingMinimalMovementOnJoin(t *testing.T) {
	members := []string{"a:1", "b:1", "c:1"}
	r := NewRing(members, DefaultVnodes)
	const n = 50000
	before := make(map[string]string, n)
	for _, k := range keys(n) {
		before[k] = r.Owner(k)
	}
	r.Add("d:1")
	moved := 0
	for k, old := range before {
		now := r.Owner(k)
		if now == old {
			continue
		}
		moved++
		if now != "d:1" {
			t.Fatalf("key %q moved between surviving members: %q -> %q", k, old, now)
		}
	}
	// Expect ~n/4 moved; allow a generous band around it.
	if moved < n/8 || moved > n/2 {
		t.Errorf("join moved %d of %d keys; want roughly %d", moved, n, n/4)
	}
}

// TestRingMinimalMovementOnLeave: removing a member moves only its own
// keys.
func TestRingMinimalMovementOnLeave(t *testing.T) {
	members := []string{"a:1", "b:1", "c:1", "d:1"}
	r := NewRing(members, DefaultVnodes)
	const n = 50000
	before := make(map[string]string, n)
	for _, k := range keys(n) {
		before[k] = r.Owner(k)
	}
	r.Remove("b:1")
	for k, old := range before {
		now := r.Owner(k)
		if old != "b:1" && now != old {
			t.Fatalf("key %q not owned by the removed member moved: %q -> %q", k, old, now)
		}
		if old == "b:1" && now == "b:1" {
			t.Fatalf("key %q still owned by removed member", k)
		}
	}
}

// TestRingOwnerExcluding: ejected members receive no keys, the ring
// owner is used when healthy, and the fallback choice for a key is
// stable while unrelated members flap.
func TestRingOwnerExcluding(t *testing.T) {
	members := []string{"a:1", "b:1", "c:1", "d:1"}
	r := NewRing(members, DefaultVnodes)
	for _, k := range keys(2000) {
		if got := r.OwnerExcluding(k, nil); got != r.Owner(k) {
			t.Fatalf("no rejection should keep the ring owner; key %q got %q want %q", k, got, r.Owner(k))
		}
	}
	reject := map[string]bool{"b:1": true}
	fallback := make(map[string]string)
	for _, k := range keys(2000) {
		got := r.OwnerExcluding(k, reject)
		if got == "b:1" {
			t.Fatalf("key %q routed to ejected member", k)
		}
		if r.Owner(k) != "b:1" && got != r.Owner(k) {
			t.Fatalf("healthy owner bypassed for key %q: got %q want %q", k, got, r.Owner(k))
		}
		if r.Owner(k) == "b:1" {
			fallback[k] = got
		}
	}
	// Ejecting another member must not reshuffle b's fallbacks that did
	// not land on it (rendezvous stability).
	reject["d:1"] = true
	for k, prev := range fallback {
		if prev == "d:1" {
			continue
		}
		if got := r.OwnerExcluding(k, reject); got != prev {
			t.Fatalf("fallback for %q reshuffled by unrelated ejection: %q -> %q", k, prev, got)
		}
	}
	// Everyone ejected: no owner.
	all := map[string]bool{"a:1": true, "b:1": true, "c:1": true, "d:1": true}
	if got := r.OwnerExcluding("k", all); got != "" {
		t.Fatalf("all-ejected ring returned owner %q", got)
	}
}

// TestRingEmpty: an empty ring returns no owner.
func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if got := r.Owner("k"); got != "" {
		t.Fatalf("empty ring returned owner %q", got)
	}
	if got := r.OwnerExcluding("k", map[string]bool{"x": true}); got != "" {
		t.Fatalf("empty ring returned owner %q", got)
	}
}
