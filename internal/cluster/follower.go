package cluster

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"infogram/internal/clock"
	"infogram/internal/gsi"
	"infogram/internal/journal"
	"infogram/internal/telemetry"
	"infogram/internal/wire"
)

// FollowerConfig wires a hot-standby journal follower.
type FollowerConfig struct {
	// Leader is the leader gatekeeper's address.
	Leader string
	// Dir is the follower's local state directory: the leader's journal
	// is mirrored here so a promotion boots from local disk exactly like
	// a crash restart.
	Dir string
	// Credential and Trust authenticate the follower to the leader.
	Credential *gsi.Credential
	Trust      *gsi.TrustStore
	// Clock defaults to the system clock.
	Clock clock.Clock
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// ResyncBackoff is the pause between reconnect attempts (default 500ms).
	ResyncBackoff time.Duration
	// FailThreshold is how many consecutive connect/stream failures
	// signal LeaderLost; <=0 selects DefaultFailThreshold. The follower
	// keeps retrying after the signal — the leader may come back — until
	// it is stopped or promoted.
	FailThreshold int
	// Telemetry optionally receives the follower's counters.
	Telemetry *telemetry.Registry
}

// Follower tails a leader's journal over the REPL capability into a
// local state directory. Promotion is deliberately nothing special: stop
// the tail, then boot a gatekeeper on Dir through the ordinary
// journal.Open → core.NewService → RecoverJournal path — the same code
// that recovers a crashed leader recovers a promoted follower, so the
// failover path is exercised by every restart test.
type Follower struct {
	cfg FollowerConfig

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	synced     chan struct{} // closed after the first complete backlog ship
	syncedOnce sync.Once
	lost       chan struct{} // closed when FailThreshold consecutive failures accrue
	lostOnce   sync.Once

	records atomic.Int64 // live records applied

	applied *telemetry.Counter
	resyncs *telemetry.Counter
}

// NewFollower builds a follower; Start begins tailing.
func NewFollower(cfg FollowerConfig) *Follower {
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.ResyncBackoff <= 0 {
		cfg.ResyncBackoff = 500 * time.Millisecond
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = DefaultFailThreshold
	}
	f := &Follower{
		cfg:    cfg,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		synced: make(chan struct{}),
		lost:   make(chan struct{}),
	}
	if cfg.Telemetry != nil {
		f.applied = cfg.Telemetry.Counter("cluster_follower_records_applied_total",
			"live journal records received from the leader and applied locally")
		f.resyncs = cfg.Telemetry.Counter("cluster_follower_resyncs_total",
			"full backlog re-synchronizations (first sync included)")
	}
	return f
}

// Start launches the tail loop.
func (f *Follower) Start() {
	go f.run()
}

// Stop ends tailing and syncs the mirrored files to disk. After Stop,
// Dir holds a journal any gatekeeper can boot from.
func (f *Follower) Stop() {
	f.stopOnce.Do(func() { close(f.stop) })
	<-f.done
}

// Synced is closed once the first full backlog has been mirrored (the
// follower is live-tailing from then on, across re-syncs).
func (f *Follower) Synced() <-chan struct{} { return f.synced }

// LeaderLost is closed when FailThreshold consecutive connection or
// stream failures accrue — the probe-driven promotion signal.
func (f *Follower) LeaderLost() <-chan struct{} { return f.lost }

// Records reports live records applied since Start (tests, telemetry).
func (f *Follower) Records() int64 { return f.records.Load() }

func (f *Follower) run() {
	defer close(f.done)
	failures := 0
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		err := f.syncOnce(&failures)
		if err != nil {
			failures++
			if failures >= f.cfg.FailThreshold {
				f.lostOnce.Do(func() { close(f.lost) })
			}
		}
		select {
		case <-f.stop:
			return
		case <-time.After(f.cfg.ResyncBackoff):
		}
	}
}

// syncOnce performs one full replication session: connect, mirror the
// backlog, then tail live records until the stream breaks or the
// follower stops. failures is reset once the backlog lands (the leader
// is demonstrably alive).
func (f *Follower) syncOnce(failures *int) error {
	conn, err := wire.DialTimeout(f.cfg.Leader, f.cfg.DialTimeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), f.cfg.DialTimeout)
	_, err = gsi.ClientHandshakeContext(ctx, conn, f.cfg.Credential, f.cfg.Trust, f.cfg.Clock.Now())
	cancel()
	if err != nil {
		return err
	}
	nctx, ncancel := context.WithTimeout(context.Background(), f.cfg.DialTimeout)
	manifest, accepted, err := wire.NegotiateRepl(nctx, conn)
	ncancel()
	if err != nil {
		return err
	}
	if !accepted {
		return fmt.Errorf("cluster: leader %s declined replication (no journal?)", f.cfg.Leader)
	}
	// Unblock the stop path: closing the connection fails the blocking
	// Read below.
	stopWatch := make(chan struct{})
	defer close(stopWatch)
	go func() {
		select {
		case <-f.stop:
			conn.Close()
		case <-stopWatch:
		}
	}()

	if err := f.wipeDir(); err != nil {
		return err
	}
	f.resyncs.Inc()

	mirror, err := newMirror(f.cfg.Dir, manifest)
	if err != nil {
		return err
	}
	defer mirror.close()

	for {
		fr, err := conn.Read()
		if err != nil {
			return err
		}
		switch fr.Verb {
		case wire.VerbReplSnap:
			if err := mirror.snapChunk(fr.Payload); err != nil {
				return err
			}
		case wire.VerbReplSeg:
			if err := mirror.segChunk(fr.Payload); err != nil {
				return err
			}
		case wire.VerbReplLive:
			// Backlog complete: commit the mirrored files, then tail.
			if err := mirror.commitBacklog(); err != nil {
				return err
			}
			*failures = 0
			f.syncedOnce.Do(func() { close(f.synced) })
		case wire.VerbReplRec:
			if err := mirror.record(fr.Payload); err != nil {
				return err
			}
			f.records.Add(1)
			f.applied.Inc()
		default:
			return fmt.Errorf("cluster: unexpected repl frame %s", fr.Verb)
		}
	}
}

// wipeDir clears the mirrored journal state for a fresh sync.
func (f *Follower) wipeDir() error {
	if err := os.MkdirAll(f.cfg.Dir, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(f.cfg.Dir)
	if err != nil {
		return err
	}
	for _, de := range entries {
		name := de.Name()
		if name == "snapshot.json" || name == "snapshot.json.tmp" ||
			(strings.HasPrefix(name, "journal-") && strings.HasSuffix(name, ".seg")) {
			if err := os.Remove(filepath.Join(f.cfg.Dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// mirror materializes one replication session's files: the snapshot, the
// shipped segment prefixes, and the live tail segment.
type mirror struct {
	dir      string
	manifest wire.ReplManifest

	snap     *os.File // snapshot.json.tmp while the backlog ships
	snapLeft int64

	segIdx  int // position in manifest.Segments
	seg     *os.File
	segLeft int64

	tail    *os.File // live record segment
	tailBuf *bufio.Writer
	encBuf  []byte
}

func newMirror(dir string, m wire.ReplManifest) (*mirror, error) {
	mi := &mirror{dir: dir, manifest: m, snapLeft: m.SnapshotSize}
	if m.SnapshotSize >= 0 {
		fh, err := os.OpenFile(filepath.Join(dir, "snapshot.json.tmp"), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, err
		}
		mi.snap = fh
	}
	// Materialize every manifest segment up front so zero-length ones
	// (the leader's freshly rotated current segment) exist too.
	for _, seg := range m.Segments {
		fh, err := os.OpenFile(mi.segPath(seg.Index), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, err
		}
		fh.Close()
	}
	if err := mi.openSeg(); err != nil {
		return nil, err
	}
	return mi, nil
}

func (m *mirror) segPath(idx int) string {
	return filepath.Join(m.dir, fmt.Sprintf("journal-%08d.seg", idx))
}

// openSeg positions the writer at the next manifest segment that still
// expects bytes.
func (m *mirror) openSeg() error {
	for m.segIdx < len(m.manifest.Segments) && m.manifest.Segments[m.segIdx].Size == 0 {
		m.segIdx++
	}
	if m.segIdx >= len(m.manifest.Segments) {
		return nil
	}
	seg := m.manifest.Segments[m.segIdx]
	fh, err := os.OpenFile(m.segPath(seg.Index), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	m.seg, m.segLeft = fh, seg.Size
	return nil
}

func (m *mirror) snapChunk(b []byte) error {
	if m.snap == nil || int64(len(b)) > m.snapLeft {
		return fmt.Errorf("cluster: unexpected snapshot chunk")
	}
	if _, err := m.snap.Write(b); err != nil {
		return err
	}
	m.snapLeft -= int64(len(b))
	return nil
}

func (m *mirror) segChunk(b []byte) error {
	for len(b) > 0 {
		if m.seg == nil {
			return fmt.Errorf("cluster: segment bytes beyond manifest")
		}
		n := int64(len(b))
		if n > m.segLeft {
			n = m.segLeft
		}
		if _, err := m.seg.Write(b[:n]); err != nil {
			return err
		}
		m.segLeft -= n
		b = b[n:]
		if m.segLeft == 0 {
			if err := m.seg.Sync(); err != nil {
				return err
			}
			if err := m.seg.Close(); err != nil {
				return err
			}
			m.seg = nil
			m.segIdx++
			if err := m.openSeg(); err != nil {
				return err
			}
		}
	}
	return nil
}

// commitBacklog finalizes the shipped history — snapshot renamed into
// place, all segments on disk — and opens the live tail segment.
func (m *mirror) commitBacklog() error {
	if m.snapLeft > 0 || (m.seg != nil && m.segLeft > 0) {
		return fmt.Errorf("cluster: backlog marked live before fully shipped")
	}
	if m.snap != nil {
		if err := m.snap.Sync(); err != nil {
			return err
		}
		if err := m.snap.Close(); err != nil {
			return err
		}
		m.snap = nil
		if err := os.Rename(filepath.Join(m.dir, "snapshot.json.tmp"), filepath.Join(m.dir, "snapshot.json")); err != nil {
			return err
		}
	}
	// Live records land in a fresh segment after the shipped history,
	// exactly like a new process epoch.
	next := 0
	for _, seg := range m.manifest.Segments {
		if seg.Index >= next {
			next = seg.Index + 1
		}
	}
	fh, err := os.OpenFile(m.segPath(next), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	m.tail = fh
	m.tailBuf = bufio.NewWriterSize(fh, 64<<10)
	return nil
}

// record appends one live record payload to the tail segment, CRC-framed
// exactly as the leader framed it.
func (m *mirror) record(payload []byte) error {
	if m.tailBuf == nil {
		return fmt.Errorf("cluster: record before backlog completed")
	}
	m.encBuf = journal.AppendFrame(m.encBuf[:0], payload)
	if _, err := m.tailBuf.Write(m.encBuf); err != nil {
		return err
	}
	// Flushed per record: a promotion reads this file from disk, and the
	// process-local buffer would hide the newest transitions. (No fsync —
	// the durability story is the leader's; the mirror is for takeover.)
	return m.tailBuf.Flush()
}

// close releases every open file (idempotent; commit state preserved).
func (m *mirror) close() {
	if m.snap != nil {
		m.snap.Close()
		m.snap = nil
	}
	if m.seg != nil {
		m.seg.Close()
		m.seg = nil
	}
	if m.tail != nil {
		if m.tailBuf != nil {
			m.tailBuf.Flush()
		}
		m.tail.Sync()
		m.tail.Close()
		m.tail = nil
	}
}
