package cluster

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"infogram/internal/clock"
	"infogram/internal/gram"
	"infogram/internal/gsi"
	"infogram/internal/telemetry"
	"infogram/internal/wire"
	"infogram/internal/xrsl"
	"infogram/internal/zerocopy"
)

// ProxyConfig wires a cluster proxy.
type ProxyConfig struct {
	// Credential and Trust terminate the client-facing GSI handshake. The
	// proxy re-authenticates to the backends with the router's credential;
	// backends therefore see the proxy's identity, so cluster deployments
	// grant the proxy identity the union of client rights and enforce
	// per-client policy at the proxy tier (or run backends with the
	// cluster-internal policy).
	Credential *gsi.Credential
	Trust      *gsi.TrustStore
	// Router performs the actual placement and forwarding. Required; the
	// proxy does not own it (callers Close it separately so it can be
	// shared with in-process tooling).
	Router *Router
	// Clock defaults to the system clock.
	Clock clock.Clock
	// RequestTimeout bounds connection I/O and each forwarded exchange,
	// exactly as core.Config.RequestTimeout does. Zero means unbounded.
	RequestTimeout time.Duration
	// ConnParallelism bounds concurrent forwards on one mux'd client
	// connection; <=0 selects the core default (8).
	ConnParallelism int
	// Telemetry optionally receives the proxy's counters.
	Telemetry *telemetry.Registry
}

// Proxy is the cluster's thin routing tier: it terminates the client's
// GSI session and mux negotiation, classifies each request frame, and
// relays it to the owning backend over the router's pooled mux
// connections — so any legacy client pointed at the proxy transparently
// talks to an N-node cluster. The proxy holds no job or cache state of
// its own; PING is the only verb it answers locally.
//
// TRACE offers are declined (the relayed frames would need their trace
// prefix re-encoded per backend hop); clients fall back exactly as they
// do against a pre-trace server.
type Proxy struct {
	cfg    ProxyConfig
	server *wire.Server

	mu   sync.Mutex
	addr string

	relayed  *telemetry.Counter
	relayErr *telemetry.Counter
}

// NewProxy builds a proxy over cfg.Router.
func NewProxy(cfg ProxyConfig) *Proxy {
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	p := &Proxy{cfg: cfg}
	if cfg.Telemetry != nil {
		p.relayed = cfg.Telemetry.Counter("cluster_proxy_relayed_total",
			"request frames relayed to a backend by the cluster proxy")
		p.relayErr = cfg.Telemetry.Counter("cluster_proxy_relay_errors_total",
			"relays that failed after routing (backend unreachable or exchange failed)")
	}
	p.server = wire.NewServer(wire.HandlerFunc(p.serveConn))
	return p
}

// Listen binds the proxy and returns the bound address.
func (p *Proxy) Listen(addr string) (string, error) {
	bound, err := p.server.Listen(addr)
	if err != nil {
		return "", err
	}
	p.mu.Lock()
	p.addr = bound
	p.mu.Unlock()
	return bound, nil
}

// Addr returns the bound address.
func (p *Proxy) Addr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.addr
}

// Close stops accepting and closes client connections. The router is
// the caller's to close.
func (p *Proxy) Close() error { return p.server.Close() }

func (p *Proxy) connParallelism() int {
	if p.cfg.ConnParallelism > 0 {
		return p.cfg.ConnParallelism
	}
	return 8
}

// serveConn mirrors the gatekeeper's connection loop: one GSI
// handshake, then the serial protocol until (and unless) the client
// upgrades to MUX.
func (p *Proxy) serveConn(c *wire.Conn) {
	if p.cfg.RequestTimeout > 0 {
		c.SetIOTimeout(p.cfg.RequestTimeout)
	}
	hctx, hcancel := p.requestCtx(context.Background())
	_, err := gsi.ServerHandshakeContext(hctx, c, p.cfg.Credential, p.cfg.Trust, p.cfg.Clock.Now())
	hcancel()
	if err != nil {
		return
	}
	for {
		f, err := c.Read()
		if err != nil {
			return
		}
		switch f.Verb {
		case wire.VerbTrace:
			// Declined: relayed frames would need per-hop re-encoding.
			if err := c.Write(wire.Frame{Verb: gram.VerbError, Payload: []byte("cluster: tracing not supported at the proxy tier")}); err != nil {
				return
			}
			continue
		case wire.VerbMux:
			if err := c.WriteString(wire.VerbMuxOK, ""); err != nil {
				return
			}
			p.serveMux(c)
			return
		}
		_ = c.Write(p.relay(context.Background(), f))
	}
}

// serveMux relays a mux'd connection's frames concurrently, mirroring
// core.Service.serveMux: the bounded semaphore makes the read loop stop
// when the connection has ConnParallelism relays in flight.
func (p *Proxy) serveMux(c *wire.Conn) {
	sem := make(chan struct{}, p.connParallelism())
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		f, err := c.Read()
		if err != nil {
			return
		}
		id, req, err := wire.DecodeMux(f)
		if err != nil {
			return
		}
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			resp := p.relay(context.Background(), req)
			_ = c.Write(wire.EncodeMux(id, resp))
		}()
	}
}

// relay classifies one request frame, routes it, and returns the
// backend's response (or a local answer/error).
func (p *Proxy) relay(ctx context.Context, f wire.Frame) wire.Frame {
	rctx, cancel := p.requestCtx(ctx)
	defer cancel()
	payload := zerocopy.String(f.Payload)
	var resp wire.Frame
	var err error
	switch f.Verb {
	case gram.VerbPing:
		// Answered locally: PING probes the tier you dialed.
		return wire.Frame{Verb: gram.VerbPong}
	case gram.VerbSubmit:
		key, idempotent := classify(payload)
		p.relayed.Inc()
		resp, err = p.cfg.Router.Forward(rctx, key, f, idempotent)
	case gram.VerbStatus:
		p.relayed.Inc()
		resp, err = p.cfg.Router.ForwardToContact(rctx, strings.TrimSpace(payload), f, true)
	case gram.VerbCancel:
		p.relayed.Inc()
		resp, err = p.cfg.Router.ForwardToContact(rctx, strings.TrimSpace(payload), f, false)
	case gram.VerbSignal:
		contact, _, _ := strings.Cut(strings.TrimSpace(payload), " ")
		p.relayed.Inc()
		resp, err = p.cfg.Router.ForwardToContact(rctx, contact, f, false)
	default:
		return wire.Frame{Verb: gram.VerbError, Payload: []byte(fmt.Sprintf("cluster: unknown verb %s", f.Verb))}
	}
	if err != nil {
		p.relayErr.Inc()
		return wire.Frame{Verb: gram.VerbError, Payload: []byte(fmt.Sprintf("cluster: relay: %v", err))}
	}
	return resp
}

func (p *Proxy) requestCtx(parent context.Context) (context.Context, context.CancelFunc) {
	if p.cfg.RequestTimeout > 0 {
		return context.WithTimeout(parent, p.cfg.RequestTimeout)
	}
	return context.WithCancel(parent)
}

// classify derives a SUBMIT frame's routing key and idempotency: a pure
// info request is read-only (safe to retry on a fallback backend), any
// request that may start a job is not. Unparseable sources relay
// non-idempotently and let the owner produce the real error.
func classify(src string) (key string, idempotent bool) {
	reqs, err := xrsl.Decode(src, nil)
	if err != nil || len(reqs) == 0 {
		return src, false
	}
	idempotent = true
	for _, r := range reqs {
		if r.Kind != xrsl.KindInfo {
			idempotent = false
			break
		}
	}
	if info := reqs[0].Info; info != nil {
		switch {
		case info.Schema:
			return "schema", idempotent
		case info.All || len(info.Keywords) == 0:
			return "all", idempotent
		default:
			return info.Keywords[0], idempotent
		}
	}
	return src, idempotent
}
