package infogram_test

// Connection-amortization benchmarks: what the mux + pool tentpole buys.
// BenchmarkDialHandshake prices the per-connection cost being amortized
// (TCP dial plus the three-message GSI handshake); the pooled-vs-dial
// suite measures end-to-end query throughput at increasing client
// concurrency, once paying that cost per request (the seed-era pattern)
// and once amortizing it over a pool of mux'd connections.
//
//	BENCH_PATTERN='BenchmarkDialHandshake|BenchmarkPooledVsDialPerRequest' BENCH_PKGS=. ./scripts/bench.sh

import (
	"context"
	"strconv"
	"sync"
	"testing"
	"time"

	"infogram/internal/core"
)

// BenchmarkDialHandshake measures one full connection establishment — TCP
// dial, GSI mutual authentication, mux negotiation — the fixed cost the
// pool exists to amortize.
func BenchmarkDialHandshake(b *testing.B) {
	f := newFabric(b)
	reg, _ := benchRegistry(time.Minute, 0, nil)
	_, addr := startInfoGram(b, f, reg)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl, err := core.Dial(addr, f.user, f.trust)
		if err != nil {
			b.Fatal(err)
		}
		cl.Close()
	}
}

// runConcurrent splits b.N requests over `clients` goroutines, each
// running fn until the shared budget is spent.
func runConcurrent(b *testing.B, clients int, fn func() error) {
	b.Helper()
	var wg sync.WaitGroup
	work := make(chan struct{}, b.N)
	for i := 0; i < b.N; i++ {
		work <- struct{}{}
	}
	close(work)
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				if err := fn(); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		b.Fatal(err)
	}
}

// BenchmarkPooledVsDialPerRequest compares query throughput when every
// request dials and authenticates its own connection (the Figure 2-era
// usage pattern) against a pool of reused mux'd connections, at 1, 8, and
// 64 concurrent clients. The provider is cached so the measured work is
// connection and protocol overhead, not information collection.
func BenchmarkPooledVsDialPerRequest(b *testing.B) {
	const query = "&(info=CPULoad)"
	clientCounts := []int{1, 8, 64}

	for _, clients := range clientCounts {
		b.Run(benchName("dial-per-request/clients", clients), func(b *testing.B) {
			f := newFabric(b)
			reg, _ := benchRegistry(time.Minute, 0, nil)
			_, addr := startInfoGram(b, f, reg)
			b.ReportAllocs()
			b.ResetTimer()
			runConcurrent(b, clients, func() error {
				cl, err := core.Dial(addr, f.user, f.trust)
				if err != nil {
					return err
				}
				defer cl.Close()
				_, err = cl.QueryRaw(query)
				return err
			})
		})
	}
	for _, clients := range clientCounts {
		b.Run(benchName("pooled/clients", clients), func(b *testing.B) {
			f := newFabric(b)
			reg, _ := benchRegistry(time.Minute, 0, nil)
			_, addr := startInfoGram(b, f, reg)
			pool := core.NewPool(addr, f.user, f.trust, core.PoolOptions{Size: 8})
			b.Cleanup(func() { pool.Close() })
			ctx := context.Background()
			// Warm the pool so the steady state is measured.
			if err := pool.Ping(ctx); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			runConcurrent(b, clients, func() error {
				_, err := pool.QueryRaw(ctx, query)
				return err
			})
		})
	}
}

func benchName(prefix string, n int) string {
	return prefix + "=" + strconv.Itoa(n)
}
